// Codec tests for the vdt wire protocol (src/net/protocol.*): round-trips
// for every op type, and adversarial decodes — truncated frames, oversized
// lengths, bad version/op bytes, zero-k, declared-shape/payload mismatches,
// random bytes — which must all yield a typed error, never a crash or an
// over-read (this suite runs under ASan/UBSan in CI). Also pins the
// LatencyHistogram the Stats op summarizes: exhaustive bucket round-trips
// over every reachable bucket and the ceiling nearest-rank percentile.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/random.h"
#include "net/net_stats.h"
#include "net/protocol.h"
#include "tests/test_util.h"

namespace vdt {
namespace net {
namespace {

using testing_util::RandomMatrix;

// --------------------------------------------------------------- round-trip

TEST(FrameTest, HeaderRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeFrame(static_cast<uint8_t>(Op::kSearch), 0xDEADBEEF, {1, 2, 3},
              &frame);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  FrameHeader header;
  ASSERT_TRUE(
      DecodeFrameHeader(frame.data(), frame.size(), kMaxPayloadBytes, &header)
          .ok());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.op, static_cast<uint8_t>(Op::kSearch));
  EXPECT_EQ(header.request_id, 0xDEADBEEFu);
  EXPECT_EQ(header.payload_len, 3u);
}

TEST(FrameTest, ShortHeaderRejected) {
  std::vector<uint8_t> frame;
  EncodeFrame(static_cast<uint8_t>(Op::kPing), 1, {}, &frame);
  FrameHeader header;
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_FALSE(
        DecodeFrameHeader(frame.data(), len, kMaxPayloadBytes, &header).ok())
        << "len=" << len;
  }
}

TEST(FrameTest, BadMagicRejected) {
  std::vector<uint8_t> frame;
  EncodeFrame(static_cast<uint8_t>(Op::kPing), 1, {}, &frame);
  frame[0] = 'X';
  FrameHeader header;
  const Status st =
      DecodeFrameHeader(frame.data(), frame.size(), kMaxPayloadBytes, &header);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedDeclaredPayloadRejected) {
  std::vector<uint8_t> frame;
  EncodeFrame(static_cast<uint8_t>(Op::kPing), 1, {}, &frame);
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  FrameHeader header;
  const Status st =
      DecodeFrameHeader(frame.data(), frame.size(), kMaxPayloadBytes, &header);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(FrameTest, VersionAndOpBytesPassThroughHeaderDecode) {
  // Bad version/op are NOT framing errors: the server answers them with
  // typed errors on an intact connection, so the header decoder must accept
  // them and hand them up.
  std::vector<uint8_t> frame;
  EncodeFrame(0x77, 9, {}, &frame);
  frame[2] = 99;  // version byte
  FrameHeader header;
  ASSERT_TRUE(
      DecodeFrameHeader(frame.data(), frame.size(), kMaxPayloadBytes, &header)
          .ok());
  EXPECT_EQ(header.version, 99);
  EXPECT_EQ(header.op, 0x77);
  EXPECT_FALSE(IsRequestOp(header.op));
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kDelete)));
}

TEST(CodecTest, SearchRequestRoundTripWithKnobs) {
  SearchRequestWire msg;
  msg.collection = "vectors";
  msg.k = 25;
  msg.has_knobs = true;
  msg.nprobe = 7;
  msg.ef = 300;
  msg.reorder_k = -1;  // negative survives the u32 transport
  msg.queries = RandomMatrix(5, 24, 11);

  const std::vector<uint8_t> bytes = EncodeSearchRequest(msg);
  SearchRequestWire out;
  ASSERT_TRUE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.collection, "vectors");
  EXPECT_EQ(out.k, 25u);
  ASSERT_TRUE(out.has_knobs);
  EXPECT_EQ(out.nprobe, 7);
  EXPECT_EQ(out.ef, 300);
  EXPECT_EQ(out.reorder_k, -1);
  ASSERT_EQ(out.queries.rows(), 5u);
  ASSERT_EQ(out.queries.dim(), 24u);
  // Bit-exact float transport.
  EXPECT_EQ(std::memcmp(out.queries.Row(0), msg.queries.Row(0),
                        5 * 24 * sizeof(float)),
            0);
}

TEST(CodecTest, SearchRequestRoundTripEmptyBatch) {
  SearchRequestWire msg;
  msg.collection = "c";
  msg.k = 3;
  msg.queries = FloatMatrix(0, 16);
  const std::vector<uint8_t> bytes = EncodeSearchRequest(msg);
  SearchRequestWire out;
  ASSERT_TRUE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.queries.rows(), 0u);
  EXPECT_EQ(out.queries.dim(), 16u);
  EXPECT_FALSE(out.has_knobs);
}

TEST(CodecTest, SearchReplyRoundTrip) {
  SearchReplyWire msg;
  msg.neighbors = {{{3, 0.25f}, {-9, 1.5f}}, {}, {{7, -0.0f}}};
  msg.work.full_distance_evals = 101;
  msg.work.graph_hops = 7;
  msg.work.gather_candidates = 13;
  const std::vector<uint8_t> bytes = EncodeSearchReply(msg);
  SearchReplyWire out;
  ASSERT_TRUE(DecodeSearchReply(bytes.data(), bytes.size(), &out).ok());
  ASSERT_EQ(out.neighbors.size(), 3u);
  ASSERT_EQ(out.neighbors[0].size(), 2u);
  EXPECT_EQ(out.neighbors[0][1].id, -9);
  EXPECT_EQ(out.neighbors[1].size(), 0u);
  // -0.0f survives bit-exactly (a value-equality transport would lose it).
  uint32_t bits;
  std::memcpy(&bits, &out.neighbors[2][0].distance, 4);
  EXPECT_EQ(bits, 0x80000000u);
  EXPECT_EQ(out.work.full_distance_evals, 101u);
  EXPECT_EQ(out.work.graph_hops, 7u);
  EXPECT_EQ(out.work.gather_candidates, 13u);
}

TEST(CodecTest, InsertRequestRoundTrip) {
  InsertRequestWire msg;
  msg.collection = "ins";
  msg.rows = RandomMatrix(9, 12, 21);
  const std::vector<uint8_t> bytes = EncodeInsertRequest(msg);
  InsertRequestWire out;
  ASSERT_TRUE(DecodeInsertRequest(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.collection, "ins");
  ASSERT_EQ(out.rows.rows(), 9u);
  EXPECT_EQ(
      std::memcmp(out.rows.Row(0), msg.rows.Row(0), 9 * 12 * sizeof(float)),
      0);
}

TEST(CodecTest, DeleteRequestRoundTrip) {
  DeleteRequestWire msg;
  msg.collection = "del";
  msg.ids = {0, -1, 123456789012345, 42};
  const std::vector<uint8_t> bytes = EncodeDeleteRequest(msg);
  DeleteRequestWire out;
  ASSERT_TRUE(DecodeDeleteRequest(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.collection, "del");
  EXPECT_EQ(out.ids, msg.ids);
}

TEST(CodecTest, StatsRoundTrip) {
  StatsRequestWire req;
  req.collection = "";  // server-only form
  std::vector<uint8_t> bytes = EncodeStatsRequest(req);
  StatsRequestWire req_out;
  ASSERT_TRUE(DecodeStatsRequest(bytes.data(), bytes.size(), &req_out).ok());
  EXPECT_TRUE(req_out.collection.empty());

  StatsReplyWire msg;
  msg.accepted_connections = 4;
  msg.requests_ok = 100;
  msg.requests_error = 9;
  msg.busy_rejected = 3;
  msg.timed_out = 2;
  msg.protocol_errors = 1;
  msg.endpoints[1] = {50, 120, 900, 2100};
  msg.coalesced_requests = 17;
  msg.coalesce_batch = {21, 2, 8, 12};
  msg.has_collection = true;
  msg.live_rows = 4096;
  msg.num_shards = 4;
  bytes = EncodeStatsReply(msg);
  StatsReplyWire out;
  ASSERT_TRUE(DecodeStatsReply(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.requests_ok, 100u);
  EXPECT_EQ(out.requests_error, 9u);
  EXPECT_EQ(out.busy_rejected, 3u);
  EXPECT_EQ(out.endpoints[1].p99_us, 2100u);
  EXPECT_EQ(out.coalesced_requests, 17u);
  EXPECT_EQ(out.coalesce_batch.count, 21u);
  EXPECT_EQ(out.coalesce_batch.p50_us, 2u);
  EXPECT_EQ(out.coalesce_batch.p99_us, 12u);
  ASSERT_TRUE(out.has_collection);
  EXPECT_EQ(out.live_rows, 4096u);
  EXPECT_EQ(out.num_shards, 4u);

  msg.has_collection = false;
  bytes = EncodeStatsReply(msg);
  ASSERT_TRUE(DecodeStatsReply(bytes.data(), bytes.size(), &out).ok());
  EXPECT_FALSE(out.has_collection);
}

TEST(CodecTest, ErrorReplyRoundTripAllCodes) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kTimeout, StatusCode::kInternal,
        StatusCode::kNotSupported}) {
    ErrorReplyWire msg;
    msg.code = code;
    msg.message = "why it failed";
    const std::vector<uint8_t> bytes = EncodeErrorReply(msg);
    ErrorReplyWire out;
    ASSERT_TRUE(DecodeErrorReply(bytes.data(), bytes.size(), &out).ok());
    EXPECT_EQ(out.code, code);
    const Status st = ErrorReplyToStatus(out);
    EXPECT_EQ(st.code(), code);
    EXPECT_EQ(st.message(), "why it failed");
  }
}

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketRoundTripExhaustiveAndMonotone) {
  // Reachable buckets: 16 exact values + 60 octaves (msb 4..63) * 8
  // sub-buckets = 496; buckets 496..511 are padding no u64 maps to.
  constexpr size_t kReachable = 496;
  uint64_t prev_lower = 0;
  for (size_t b = 0; b < kReachable; ++b) {
    const uint64_t lower = LatencyHistogram::BucketLower(b);
    // Each bucket's lower bound maps back to that bucket...
    ASSERT_EQ(LatencyHistogram::BucketOf(lower), b) << "bucket " << b;
    // ...bounds are strictly increasing...
    if (b > 0) {
      ASSERT_GT(lower, prev_lower) << "bucket " << b;
    }
    prev_lower = lower;
    // ...and the value just below the next bound still lands here, so the
    // buckets tile the u64 range with no gaps and no overlaps.
    if (b + 1 < kReachable) {
      ASSERT_EQ(LatencyHistogram::BucketOf(LatencyHistogram::BucketLower(b + 1) - 1),
                b)
          << "bucket " << b;
    }
  }
  EXPECT_EQ(LatencyHistogram::BucketOf(UINT64_MAX), kReachable - 1);
}

TEST(HistogramTest, BucketBoundaryValues) {
  // The exact-bucket / octave seam and every power-of-two seam.
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(15), 15u);
  EXPECT_EQ(LatencyHistogram::BucketOf(16), 16u);
  EXPECT_EQ(LatencyHistogram::BucketLower(16), 16u);
  for (int k = 5; k < 64; ++k) {
    const uint64_t pow = uint64_t{1} << k;
    EXPECT_LT(LatencyHistogram::BucketOf(pow - 1),
              LatencyHistogram::BucketOf(pow))
        << "k=" << k;
    EXPECT_LE(LatencyHistogram::BucketOf(pow),
              LatencyHistogram::BucketOf(pow + 1))
        << "k=" << k;
    // A power of two opens its octave, so it is its own bucket lower bound.
    EXPECT_EQ(LatencyHistogram::BucketLower(LatencyHistogram::BucketOf(pow)),
              pow)
        << "k=" << k;
  }
}

TEST(HistogramTest, BucketOfMonotoneOnRandomPairs) {
  Rng rng(4207);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.UniformInt(UINT64_MAX);
    uint64_t b = rng.UniformInt(UINT64_MAX);
    if (a > b) std::swap(a, b);
    EXPECT_LE(LatencyHistogram::BucketOf(a), LatencyHistogram::BucketOf(b))
        << a << " vs " << b;
    // A bucket's lower bound never exceeds the values it holds (this is
    // what keeps reported percentiles within 12.5% below the true value).
    EXPECT_LE(LatencyHistogram::BucketLower(LatencyHistogram::BucketOf(b)), b);
  }
}

TEST(HistogramTest, PercentileUsesCeilingNearestRank) {
  // total = 1: every percentile is the one sample.
  LatencyHistogram one;
  one.Record(7);
  EXPECT_EQ(one.Percentile(0.0), 7u);
  EXPECT_EQ(one.Percentile(0.5), 7u);
  EXPECT_EQ(one.Percentile(0.95), 7u);
  EXPECT_EQ(one.Percentile(1.0), 7u);

  // total = 2: p95 must be the SECOND sample — rank ceil(0.95 * 2) = 2. The
  // old floor-based rank truncated to 1 and reported the 1us bucket.
  LatencyHistogram two;
  two.Record(1);
  two.Record(100);
  EXPECT_EQ(two.Percentile(0.5), 1u);
  // 100 lives in the [96, 104) sub-bucket; percentiles report lower bounds.
  ASSERT_EQ(LatencyHistogram::BucketLower(LatencyHistogram::BucketOf(100)),
            96u);
  EXPECT_EQ(two.Percentile(0.95), 96u);
  EXPECT_EQ(two.Percentile(1.0), 96u);

  // total = 100, split 50/50 across two buckets: rank 50 (p = 0.50 exactly)
  // is the last sample of the low bucket, rank 51 (any p in (0.50, 0.51])
  // crosses into the high one. 1000us lives in the [960, 1024) sub-bucket.
  LatencyHistogram hundred;
  for (int i = 0; i < 50; ++i) hundred.Record(1);
  for (int i = 0; i < 50; ++i) hundred.Record(1000);
  EXPECT_EQ(hundred.Percentile(0.0), 1u);
  EXPECT_EQ(hundred.Percentile(0.50), 1u);
  EXPECT_EQ(hundred.Percentile(0.505), 960u);
  EXPECT_EQ(hundred.Percentile(0.95), 960u);
  EXPECT_EQ(hundred.Percentile(1.0), 960u);

  // No samples: every percentile is 0.
  LatencyHistogram empty;
  EXPECT_EQ(empty.Percentile(0.95), 0u);
}

// -------------------------------------------------------------- adversarial

/// Every strict prefix of a valid encoding must decode to an error — the
/// truncated-frame case, exhaustively at every cut point.
template <typename Msg, typename Decoder>
void ExpectAllTruncationsRejected(const std::vector<uint8_t>& bytes,
                                  Decoder decode) {
  for (size_t len = 0; len < bytes.size(); ++len) {
    Msg out;
    EXPECT_FALSE(decode(bytes.data(), len, &out).ok()) << "cut at " << len;
  }
}

TEST(AdversarialTest, TruncatedSearchRequest) {
  SearchRequestWire msg;
  msg.collection = "c";
  msg.k = 4;
  msg.has_knobs = true;
  msg.nprobe = 2;
  msg.queries = RandomMatrix(2, 6, 5);
  ExpectAllTruncationsRejected<SearchRequestWire>(EncodeSearchRequest(msg),
                                                  DecodeSearchRequest);
}

TEST(AdversarialTest, TruncatedSearchReply) {
  SearchReplyWire msg;
  msg.neighbors = {{{1, 1.0f}, {2, 2.0f}}, {{3, 3.0f}}};
  ExpectAllTruncationsRejected<SearchReplyWire>(EncodeSearchReply(msg),
                                                DecodeSearchReply);
}

TEST(AdversarialTest, TruncatedInsertDeleteStatsError) {
  InsertRequestWire ins;
  ins.collection = "x";
  ins.rows = RandomMatrix(3, 4, 6);
  ExpectAllTruncationsRejected<InsertRequestWire>(EncodeInsertRequest(ins),
                                                  DecodeInsertRequest);
  DeleteRequestWire del;
  del.collection = "x";
  del.ids = {5, 6};
  ExpectAllTruncationsRejected<DeleteRequestWire>(EncodeDeleteRequest(del),
                                                  DecodeDeleteRequest);
  StatsReplyWire stats;
  stats.has_collection = true;
  ExpectAllTruncationsRejected<StatsReplyWire>(EncodeStatsReply(stats),
                                               DecodeStatsReply);
  ErrorReplyWire err;
  err.code = StatusCode::kTimeout;
  err.message = "late";
  ExpectAllTruncationsRejected<ErrorReplyWire>(EncodeErrorReply(err),
                                               DecodeErrorReply);
}

TEST(AdversarialTest, TrailingBytesRejected) {
  SearchRequestWire msg;
  msg.collection = "c";
  msg.k = 1;
  msg.queries = FloatMatrix(1, 2);
  std::vector<uint8_t> bytes = EncodeSearchRequest(msg);
  bytes.push_back(0);
  SearchRequestWire out;
  EXPECT_FALSE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());
}

TEST(AdversarialTest, ZeroKRejected) {
  SearchRequestWire msg;
  msg.collection = "c";
  msg.k = 0;
  msg.queries = FloatMatrix(1, 2);
  const std::vector<uint8_t> bytes = EncodeSearchRequest(msg);
  SearchRequestWire out;
  const Status st = DecodeSearchRequest(bytes.data(), bytes.size(), &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(AdversarialTest, DeclaredShapeBeyondPayloadRejected) {
  // Declare a 1000x1000 batch but ship only one float: the "dim mismatch"
  // wire case. The decoder must notice before allocating/reading.
  std::vector<uint8_t> bytes;
  bytes.push_back(1);  // name_len lo
  bytes.push_back(0);  // name_len hi
  bytes.push_back('c');
  for (uint32_t v : {10u}) {  // k
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  bytes.push_back(0);  // flags
  for (uint32_t v : {1000u, 1000u}) {  // nq, dim
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) bytes.push_back(0);  // one lonely float
  SearchRequestWire out;
  EXPECT_FALSE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());
}

TEST(AdversarialTest, HugeDeclaredShapesRejectedWithoutAllocating) {
  // nq/dim at u32 max would overflow a naive nq*dim*4 size check.
  std::vector<uint8_t> bytes;
  bytes.push_back(0);
  bytes.push_back(0);  // empty name
  for (int i = 0; i < 4; ++i) bytes.push_back(i == 0 ? 1 : 0);  // k = 1
  bytes.push_back(0);                                           // flags
  for (int rep = 0; rep < 2; ++rep) {  // nq = dim = 0xFFFFFFFF
    for (int i = 0; i < 4; ++i) bytes.push_back(0xFF);
  }
  SearchRequestWire out;
  EXPECT_FALSE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());

  // Same for delete: count beyond the payload must fail the cheap
  // remaining/8 check, not resize to 4 billion entries.
  std::vector<uint8_t> del;
  del.push_back(0);
  del.push_back(0);
  for (int i = 0; i < 4; ++i) del.push_back(0xFF);
  DeleteRequestWire del_out;
  EXPECT_FALSE(DecodeDeleteRequest(del.data(), del.size(), &del_out).ok());
}

TEST(AdversarialTest, UnknownFlagBitsRejected) {
  SearchRequestWire msg;
  msg.collection = "c";
  msg.k = 1;
  msg.queries = FloatMatrix(0, 1);
  std::vector<uint8_t> bytes = EncodeSearchRequest(msg);
  // flags byte sits right after name (2+1) and k (4).
  bytes[3 + 4] = 0x80;
  SearchRequestWire out;
  EXPECT_FALSE(DecodeSearchRequest(bytes.data(), bytes.size(), &out).ok());
}

TEST(AdversarialTest, ErrorReplyWithOkOrBogusCodeRejected) {
  ErrorReplyWire msg;
  msg.code = StatusCode::kTimeout;
  msg.message = "m";
  std::vector<uint8_t> bytes = EncodeErrorReply(msg);
  bytes[0] = 0;  // kOk is not an error
  ErrorReplyWire out;
  EXPECT_FALSE(DecodeErrorReply(bytes.data(), bytes.size(), &out).ok());
  bytes[0] = 200;  // out of enum range
  EXPECT_FALSE(DecodeErrorReply(bytes.data(), bytes.size(), &out).ok());
}

TEST(AdversarialTest, RandomBytesNeverCrashAnyDecoder) {
  // Fuzz-lite: the decoders must be total over arbitrary input. ASan/UBSan
  // in CI turn any over-read or UB here into a failure.
  Rng rng(20240807);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = static_cast<size_t>(rng.UniformInt(uint64_t{96}));
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.UniformInt(uint64_t{256}));
    }
    SearchRequestWire sr;
    SearchReplyWire sp;
    InsertRequestWire ir;
    DeleteRequestWire dr;
    StatsRequestWire tr;
    StatsReplyWire tp;
    ErrorReplyWire er;
    FrameHeader fh;
    (void)DecodeSearchRequest(bytes.data(), bytes.size(), &sr);
    (void)DecodeSearchReply(bytes.data(), bytes.size(), &sp);
    (void)DecodeInsertRequest(bytes.data(), bytes.size(), &ir);
    (void)DecodeDeleteRequest(bytes.data(), bytes.size(), &dr);
    (void)DecodeStatsRequest(bytes.data(), bytes.size(), &tr);
    (void)DecodeStatsReply(bytes.data(), bytes.size(), &tp);
    (void)DecodeErrorReply(bytes.data(), bytes.size(), &er);
    (void)DecodeFrameHeader(bytes.data(), bytes.size(), kMaxPayloadBytes, &fh);
  }
}

}  // namespace
}  // namespace net
}  // namespace vdt
