// Unit tests for src/common: Status/Result, Rng, ThreadPool, TablePrinter,
// env helpers, FloatMatrix, SpscQueue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <thread>

#include "common/env.h"
#include "common/float_matrix.h"
#include "common/parallel_executor.h"
#include "common/random.h"
#include "common/spsc_queue.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace vdt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad nlist");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad nlist");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad nlist");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotSupported); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Timeout("slow"); };
  auto wrapper = [&]() -> Status {
    VDT_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kTimeout);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  auto idx = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t i : idx) EXPECT_LT(i, 50u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The child stream should not replicate the parent's continuation.
  Rng a2(21);
  a2.Fork();
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (child.Next64() == a2.Next64());
  EXPECT_LT(same, 3);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

// Parallel-for coverage is exercised through ParallelExecutor below, the
// sole parallel-for API since ThreadPool::ParallelFor was folded into it.

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: returns immediately
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelExecutorTest, CoversRangeExactlyOnce) {
  ParallelExecutor ex(4);
  EXPECT_EQ(ex.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(513);
  ex.ParallelFor(513, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelExecutorTest, ZeroAndSingleItem) {
  ParallelExecutor ex(3);
  std::atomic<int> count{0};
  ex.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  ex.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelExecutorTest, NestedCallsRunInlineWithoutDeadlock) {
  ParallelExecutor ex(2);
  std::atomic<int> inner{0};
  ex.ParallelFor(4, [&](size_t) {
    ex.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 32);
}

TEST(ParallelExecutorTest, ReusableAcrossCalls) {
  ParallelExecutor ex(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    ex.ParallelFor(17, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 17);
  }
}

TEST(ParallelExecutorTest, GlobalIsSingletonAndUsable) {
  ParallelExecutor& a = ParallelExecutor::Global();
  ParallelExecutor& b = ParallelExecutor::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> count{0};
  a.ParallelFor(5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(StopwatchTest, MeasuresForward) {
  Stopwatch sw;
  volatile double sink = 0.0;
  // Plain assignment: compound assignment to a volatile is deprecated in
  // C++20 (-Wvolatile).
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());  // later read, scaled
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.Row().Cell("alpha").Cell(3.14159, 2);
  t.Row().Cell("b").Cell(int64_t{42});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoubleFixedPrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(EnvTest, FallbacksWhenUnset) {
  unsetenv("VDT_TEST_UNSET_XYZ");
  EXPECT_EQ(EnvInt("VDT_TEST_UNSET_XYZ", 5), 5);
  EXPECT_DOUBLE_EQ(EnvDouble("VDT_TEST_UNSET_XYZ", 2.5), 2.5);
  EXPECT_EQ(EnvString("VDT_TEST_UNSET_XYZ", "d"), "d");
}

TEST(EnvTest, ParsesValues) {
  setenv("VDT_TEST_SET_XYZ", "17", 1);
  EXPECT_EQ(EnvInt("VDT_TEST_SET_XYZ", 5), 17);
  setenv("VDT_TEST_SET_XYZ", "1.75", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("VDT_TEST_SET_XYZ", 0.0), 1.75);
  unsetenv("VDT_TEST_SET_XYZ");
}

TEST(FloatMatrixTest, AppendAndSlice) {
  FloatMatrix m;
  const float r0[] = {1.f, 2.f};
  const float r1[] = {3.f, 4.f};
  m.AppendRow(r0, 2);
  m.AppendRow(r1, 2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.dim(), 2u);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.f);
  FloatMatrix s = m.Slice(1, 2);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_FLOAT_EQ(s.At(0, 1), 4.f);
}

TEST(FloatMatrixTest, MemoryBytes) {
  FloatMatrix m(10, 4);
  EXPECT_EQ(m.MemoryBytes(), 10u * 4u * sizeof(float));
}

TEST(SpscQueueTest, SingleItemRoundTrip) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.SizeApprox(), 0u);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));  // empty
  EXPECT_TRUE(q.TryPush(42));
  EXPECT_EQ(q.SizeApprox(), 1u);
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, FullAndEmptyEdges) {
  SpscQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));  // full: admission control's signal
  EXPECT_EQ(q.SizeApprox(), 3u);
  int out = 0;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);           // FIFO
  EXPECT_TRUE(q.TryPush(4));   // one slot freed
  EXPECT_FALSE(q.TryPush(5));  // full again
  for (int want : {2, 3, 4}) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(q.TryPop(&out));
  // Zero capacity is clamped to 1, never a zero-slot ring.
  SpscQueue<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 1u);
  EXPECT_TRUE(tiny.TryPush(7));
  EXPECT_FALSE(tiny.TryPush(8));
}

TEST(SpscQueueTest, WraparoundPreservesOrder) {
  // Push/pop far more items than slots so head/tail lap the ring many
  // times; order and values must survive every wrap.
  SpscQueue<int> q(5);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.TryPush(next_push)) ++next_push;
    int out = -1;
    while (q.TryPop(&out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GE(next_pop, 500);
}

TEST(SpscQueueTest, MoveOnlyItems) {
  SpscQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(9)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 9);
}

TEST(SpscQueueTest, ProducerConsumerThreadsStream) {
  // One producer, one consumer, a queue much smaller than the stream: the
  // consumer must see exactly 0..n-1 in order through every full/empty
  // transition. (This is the dispatcher->worker hand-off in miniature.)
  constexpr int kItems = 20000;
  SpscQueue<int> q(8);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
    q.Shutdown();
  });
  int expected = 0;
  int out = -1;
  while (q.BlockingPop(&out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
  EXPECT_TRUE(q.shut_down());
}

TEST(SpscQueueTest, BlockingPopWakesOnPush) {
  SpscQueue<int> q(2);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    if (q.BlockingPop(&out) && out == 5) got.store(true);
  });
  // Give the consumer time to actually park on the cv before the push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.TryPush(5));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(SpscQueueTest, ShutdownDrainsBeforeReturningFalse) {
  // The graceful-drain contract: items queued before Shutdown() are still
  // delivered; only then does BlockingPop return false.
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Shutdown();
  int out = 0;
  EXPECT_TRUE(q.BlockingPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.BlockingPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.BlockingPop(&out));
  EXPECT_FALSE(q.BlockingPop(&out));  // stays false once drained
}

TEST(SpscQueueTest, ShutdownUnblocksParkedConsumer) {
  SpscQueue<int> q(2);
  std::atomic<bool> returned_false{false};
  std::thread consumer([&] {
    int out = 0;
    if (!q.BlockingPop(&out)) returned_false.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Shutdown();  // empty queue: the parked consumer must wake and exit
  consumer.join();
  EXPECT_TRUE(returned_false.load());
}

TEST(SpscQueueTest, BlockingPopUntilTimesOutOnEmptyQueue) {
  // The coalescing window wait: an empty queue returns false once the
  // deadline passes, without shutting anything down.
  SpscQueue<int> q(4);
  int out = 0;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.BlockingPopUntil(
      &out, before + std::chrono::milliseconds(30)));
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(30));
  // The queue is still fully usable afterwards.
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
}

TEST(SpscQueueTest, BlockingPopUntilReturnsEarlyOnArrival) {
  SpscQueue<int> q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    if (q.BlockingPopUntil(&out, std::chrono::steady_clock::now() +
                                     std::chrono::seconds(5)) &&
        out == 9) {
      got.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.TryPush(9));
  consumer.join();  // joins in ~20ms, nowhere near the 5s deadline
  EXPECT_TRUE(got.load());
}

TEST(SpscQueueTest, BlockingPopUntilHonorsShutdownDrain) {
  // Same drain contract as BlockingPop: a queued item is delivered even
  // after Shutdown(), and only an empty shut-down queue returns false —
  // immediately, not at the deadline.
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(7));
  q.Shutdown();
  int out = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_TRUE(q.BlockingPopUntil(&out, deadline));
  EXPECT_EQ(out, 7);
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.BlockingPopUntil(&out, deadline));
  EXPECT_LT(std::chrono::steady_clock::now() - before,
            std::chrono::seconds(2));

  // And a parked waiter is woken by Shutdown() before its deadline.
  SpscQueue<int> parked(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int item = 0;
    if (!parked.BlockingPopUntil(&item, std::chrono::steady_clock::now() +
                                            std::chrono::seconds(5))) {
      returned.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  parked.Shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

}  // namespace
}  // namespace vdt
