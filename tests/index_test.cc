// Tests for src/index: distances, k-means, top-k, and every index type —
// including parameterized recall/monotonicity property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/parallel_executor.h"
#include "index/auto_index.h"
#include "index/distance.h"
#include "index/hnsw_index.h"
#include "index/index.h"
#include "index/ivf_index.h"
#include "index/kmeans.h"
#include "index/scann_index.h"
#include "index/topk.h"
#include "tests/test_util.h"

namespace vdt {
namespace {

using testing_util::ClusteredMatrix;
using testing_util::RandomMatrix;

// ------------------------------------------------------------ distance

TEST(DistanceTest, DotAndL2Consistency) {
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(DotProduct(a, b, 5), 35.f);
  EXPECT_FLOAT_EQ(L2SquaredDistance(a, b, 5), 16 + 4 + 0 + 4 + 16);
}

TEST(DistanceTest, AngularOfIdenticalNormalizedVectorsIsZero) {
  float a[] = {3, 4};
  NormalizeVector(a, 2);
  EXPECT_NEAR(Distance(Metric::kAngular, a, a, 2), 0.f, 1e-6f);
  EXPECT_NEAR(Norm(a, 2), 1.f, 1e-6f);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop) {
  float z[] = {0, 0, 0};
  NormalizeVector(z, 3);
  EXPECT_FLOAT_EQ(z[0], 0.f);
}

TEST(DistanceTest, NormalizeNonFiniteVectorIsNoop) {
  const float inf = std::numeric_limits<float>::infinity();
  float v[] = {1.f, inf, 2.f};
  NormalizeVector(v, 3);
  EXPECT_FLOAT_EQ(v[0], 1.f);  // untouched: no inf/NaN poisoning
  float w[] = {std::numeric_limits<float>::quiet_NaN(), 1.f};
  NormalizeVector(w, 2);
  EXPECT_FLOAT_EQ(w[1], 1.f);
}

TEST(DistanceTest, KernelsHandleDimNotMultipleOfFour) {
  // The unrolled kernels process 4 lanes at a time plus a scalar tail; check
  // every tail length (dim % 4 in {0,1,2,3}) against a naive reference.
  for (size_t dim = 1; dim <= 9; ++dim) {
    std::vector<float> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = 0.5f * static_cast<float>(i + 1);
      b[i] = 2.0f - 0.25f * static_cast<float>(i);
    }
    float dot = 0.f, l2 = 0.f;
    for (size_t i = 0; i < dim; ++i) {
      dot += a[i] * b[i];
      const float d = a[i] - b[i];
      l2 += d * d;
    }
    EXPECT_NEAR(DotProduct(a.data(), b.data(), dim), dot, 1e-4f) << dim;
    EXPECT_NEAR(L2SquaredDistance(a.data(), b.data(), dim), l2, 1e-4f) << dim;
    EXPECT_NEAR(Distance(Metric::kL2, a.data(), b.data(), dim), l2, 1e-4f);
    EXPECT_NEAR(Distance(Metric::kInnerProduct, a.data(), b.data(), dim), -dot,
                1e-4f);
  }
}

TEST(DistanceTest, NormalizePreservesDirectionOnOddDims) {
  for (size_t dim : {3u, 5u, 7u}) {
    std::vector<float> v(dim);
    for (size_t i = 0; i < dim; ++i) v[i] = static_cast<float>(i) - 1.5f;
    NormalizeVector(v.data(), dim);
    EXPECT_NEAR(Norm(v.data(), dim), 1.f, 1e-5f) << dim;
  }
}

TEST(DistanceTest, SmallerDistanceMeansMoreSimilar) {
  float q[] = {1, 0};
  float close_v[] = {0.9f, 0.1f};
  float far_v[] = {-1, 0};
  NormalizeVector(close_v, 2);
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kAngular}) {
    EXPECT_LT(Distance(m, q, close_v, 2), Distance(m, q, far_v, 2))
        << MetricName(m);
  }
}

// ------------------------------------------------------------ top-k

TEST(TopKTest, KeepsSmallestDistances) {
  TopKCollector topk(3);
  for (int i = 10; i >= 1; --i) {
    topk.Offer(i, static_cast<float>(i));
  }
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(out[1].id, 2);
  EXPECT_EQ(out[2].id, 3);
}

TEST(TopKTest, WorstDistanceTracksHeapRoot) {
  TopKCollector topk(2);
  EXPECT_TRUE(std::isinf(topk.WorstDistance()));
  topk.Offer(0, 5.f);
  topk.Offer(1, 1.f);
  EXPECT_FLOAT_EQ(topk.WorstDistance(), 5.f);
  topk.Offer(2, 2.f);  // evicts 5
  EXPECT_FLOAT_EQ(topk.WorstDistance(), 2.f);
}

TEST(TopKTest, UnderfilledReturnsAll) {
  TopKCollector topk(10);
  topk.Offer(7, 0.5f);
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7);
}

// ------------------------------------------------------------ k-means

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  // Three tight blobs far apart.
  FloatMatrix data(90, 2);
  Rng rng(5);
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (size_t i = 0; i < 90; ++i) {
    const auto& c = centers[i % 3];
    data.At(i, 0) = c[0] + static_cast<float>(rng.Normal(0, 0.1));
    data.At(i, 1) = c[1] + static_cast<float>(rng.Normal(0, 0.1));
  }
  KMeansOptions opt;
  opt.seed = 3;
  const KMeansResult km = KMeansCluster(data, 3, opt);
  ASSERT_EQ(km.centroids.rows(), 3u);
  // Every point is assigned to a centroid near its blob center.
  for (size_t i = 0; i < 90; ++i) {
    const float* cent = km.centroids.Row(km.assignments[i]);
    EXPECT_LT(L2SquaredDistance(cent, data.Row(i), 2), 1.0f);
  }
}

TEST(KMeansTest, ClampsKToDataSize) {
  FloatMatrix data = RandomMatrix(5, 4, 1);
  const KMeansResult km = KMeansCluster(data, 64, {});
  EXPECT_LE(km.centroids.rows(), 5u);
  EXPECT_EQ(km.assignments.size(), 5u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  FloatMatrix data = RandomMatrix(200, 8, 2);
  KMeansOptions opt;
  opt.seed = 77;
  const KMeansResult a = KMeansCluster(data, 8, opt);
  const KMeansResult b = KMeansCluster(data, 8, opt);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_NEAR(a.centroids.MemoryBytes(), b.centroids.MemoryBytes(), 0);
}

// ------------------------------------------------------------ brute force

TEST(BruteForceTest, ExactAndSorted) {
  FloatMatrix data = RandomMatrix(100, 8, 3);
  FloatMatrix queries = RandomMatrix(5, 8, 4);
  for (size_t q = 0; q < queries.rows(); ++q) {
    WorkCounters wc;
    auto hits = BruteForceSearch(data, Metric::kAngular, queries.Row(q), 10, &wc);
    ASSERT_EQ(hits.size(), 10u);
    EXPECT_EQ(wc.full_distance_evals, 100u);
    for (size_t i = 1; i < hits.size(); ++i) {
      EXPECT_LE(hits[i - 1].distance, hits[i].distance);
    }
  }
}

// ------------------------------------------------------------ index types

struct IndexCase {
  IndexType type;
  double min_recall;  // acceptance floor at comfortable parameters
};

class IndexRecallTest : public ::testing::TestWithParam<IndexCase> {};

TEST_P(IndexRecallTest, AchievesReasonableRecall) {
  const IndexCase tc = GetParam();
  const size_t n = 1200, dim = 32, k = 10, nq = 24;
  FloatMatrix data = ClusteredMatrix(n, dim, 16, 0.25, 42);
  FloatMatrix queries = ClusteredMatrix(nq, dim, 16, 0.28, 43);

  IndexParams params;
  params.nlist = 32;
  params.nprobe = 8;
  params.m = 8;
  params.nbits = 8;
  params.hnsw_m = 16;
  params.ef_construction = 128;
  params.ef = 96;
  params.reorder_k = 120;

  auto index = CreateIndex(tc.type, Metric::kAngular, params, 7);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->Build(data).ok());
  EXPECT_EQ(index->Size(), n);

  double recall_sum = 0.0;
  for (size_t q = 0; q < nq; ++q) {
    auto truth = BruteForceSearch(data, Metric::kAngular, queries.Row(q), k,
                                  nullptr);
    std::set<int64_t> expected;
    for (const auto& t : truth) expected.insert(t.id);
    WorkCounters wc;
    auto hits = index->Search(queries.Row(q), k, &wc);
    EXPECT_LE(hits.size(), k);
    size_t found = 0;
    for (const auto& h : hits) found += expected.count(h.id);
    recall_sum += static_cast<double>(found) / k;
    if (tc.type != IndexType::kFlat) {
      EXPECT_GT(wc.Total(), 0u);
    }
  }
  EXPECT_GE(recall_sum / nq, tc.min_recall)
      << "index " << IndexTypeName(tc.type);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, IndexRecallTest,
    ::testing::Values(IndexCase{IndexType::kFlat, 0.999},
                      IndexCase{IndexType::kIvfFlat, 0.78},
                      IndexCase{IndexType::kIvfSq8, 0.72},
                      IndexCase{IndexType::kIvfPq, 0.35},
                      IndexCase{IndexType::kHnsw, 0.88},
                      IndexCase{IndexType::kScann, 0.78},
                      IndexCase{IndexType::kAutoIndex, 0.88}),
    [](const ::testing::TestParamInfo<IndexCase>& info) {
      return IndexTypeName(info.param.type);
    });

// SearchBatch must be a drop-in replacement for the sequential Search loop:
// identical hits, identical order, identical work counters — on every
// backend, with a thread pool wider than one.
class SearchBatchParityTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(SearchBatchParityTest, MatchesSequentialSearch) {
  const IndexType type = GetParam();
  const size_t n = 900, dim = 24, k = 10, nq = 37;  // nq not a pool multiple
  FloatMatrix data = ClusteredMatrix(n, dim, 12, 0.25, 21);
  FloatMatrix queries = ClusteredMatrix(nq, dim, 12, 0.3, 22);

  IndexParams params;
  params.nlist = 24;
  params.nprobe = 6;
  params.hnsw_m = 12;
  params.ef_construction = 96;
  params.ef = 64;
  params.reorder_k = 80;

  auto index = CreateIndex(type, Metric::kAngular, params, 5);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->Build(data).ok());

  WorkCounters seq_wc;
  std::vector<std::vector<Neighbor>> expected(nq);
  for (size_t q = 0; q < nq; ++q) {
    expected[q] = index->Search(queries.Row(q), k, &seq_wc);
  }

  ParallelExecutor executor(4);
  ASSERT_GT(executor.num_threads(), 1u);
  WorkCounters batch_wc;
  auto batch = index->SearchBatch(queries, k, &batch_wc, &executor);

  ASSERT_EQ(batch.size(), nq);
  for (size_t q = 0; q < nq; ++q) {
    ASSERT_EQ(batch[q].size(), expected[q].size()) << "query " << q;
    for (size_t i = 0; i < batch[q].size(); ++i) {
      EXPECT_EQ(batch[q][i].id, expected[q][i].id) << "query " << q;
      EXPECT_EQ(batch[q][i].distance, expected[q][i].distance) << "query " << q;
    }
  }
  EXPECT_EQ(batch_wc.Total(), seq_wc.Total());
  EXPECT_EQ(batch_wc.full_distance_evals, seq_wc.full_distance_evals);
  EXPECT_EQ(batch_wc.graph_hops, seq_wc.graph_hops);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SearchBatchParityTest,
                         ::testing::Values(IndexType::kFlat,
                                           IndexType::kIvfFlat,
                                           IndexType::kHnsw,
                                           IndexType::kScann),
                         [](const ::testing::TestParamInfo<IndexType>& info) {
                           return IndexTypeName(info.param);
                         });

TEST(SearchBatchTest, UsesGlobalExecutorByDefault) {
  FloatMatrix data = RandomMatrix(200, 16, 31);
  auto index = CreateIndex(IndexType::kFlat, Metric::kAngular, {}, 1);
  ASSERT_TRUE(index->Build(data).ok());
  FloatMatrix queries = RandomMatrix(9, 16, 32);
  auto batch = index->SearchBatch(queries, 5, nullptr);
  ASSERT_EQ(batch.size(), 9u);
  for (size_t q = 0; q < queries.rows(); ++q) {
    auto expected = index->Search(queries.Row(q), 5, nullptr);
    ASSERT_EQ(batch[q].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, expected[i].id);
    }
  }
}

TEST(FlatIndexTest, PerfectRecallAlways) {
  FloatMatrix data = RandomMatrix(300, 16, 9);
  auto index = CreateIndex(IndexType::kFlat, Metric::kAngular, {}, 1);
  ASSERT_TRUE(index->Build(data).ok());
  FloatMatrix q = RandomMatrix(8, 16, 10);
  for (size_t i = 0; i < q.rows(); ++i) {
    auto truth = BruteForceSearch(data, Metric::kAngular, q.Row(i), 5, nullptr);
    auto hits = index->Search(q.Row(i), 5, nullptr);
    ASSERT_EQ(hits.size(), truth.size());
    for (size_t j = 0; j < hits.size(); ++j) {
      EXPECT_EQ(hits[j].id, truth[j].id);
    }
  }
}

TEST(IvfFlatTest, RecallIncreasesWithNprobe) {
  const size_t n = 1500, dim = 24, k = 10;
  FloatMatrix data = ClusteredMatrix(n, dim, 24, 0.3, 11);
  FloatMatrix queries = ClusteredMatrix(16, dim, 24, 0.33, 12);

  IndexParams params;
  params.nlist = 48;
  auto index = std::make_unique<IvfFlatIndex>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());

  auto recall_at = [&](int nprobe) {
    IndexParams p = params;
    p.nprobe = nprobe;
    index->UpdateSearchParams(p);
    double sum = 0.0;
    for (size_t q = 0; q < queries.rows(); ++q) {
      auto truth =
          BruteForceSearch(data, Metric::kAngular, queries.Row(q), k, nullptr);
      std::set<int64_t> expected;
      for (const auto& t : truth) expected.insert(t.id);
      auto hits = index->Search(queries.Row(q), k, nullptr);
      size_t found = 0;
      for (const auto& h : hits) found += expected.count(h.id);
      sum += static_cast<double>(found) / k;
    }
    return sum / queries.rows();
  };

  const double r1 = recall_at(1);
  const double r8 = recall_at(8);
  const double r48 = recall_at(48);
  EXPECT_LE(r1, r8 + 1e-9);
  EXPECT_LE(r8, r48 + 1e-9);
  EXPECT_GT(r48, 0.999);  // probing all lists = exhaustive
}

TEST(IvfFlatTest, WorkScalesWithNprobe) {
  FloatMatrix data = RandomMatrix(1000, 16, 13);
  IndexParams params;
  params.nlist = 40;
  params.nprobe = 2;
  auto index = std::make_unique<IvfFlatIndex>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());
  FloatMatrix q = RandomMatrix(1, 16, 14);

  WorkCounters low, high;
  index->Search(q.Row(0), 5, &low);
  IndexParams p2 = params;
  p2.nprobe = 20;
  index->UpdateSearchParams(p2);
  index->Search(q.Row(0), 5, &high);
  EXPECT_GT(high.full_distance_evals, low.full_distance_evals);
  EXPECT_EQ(high.coarse_distance_evals, low.coarse_distance_evals);
}

TEST(IvfPqTest, RejectsNonDividingM) {
  FloatMatrix data = RandomMatrix(500, 30, 15);  // 30 % 7 != 0
  IndexParams params;
  params.nlist = 16;
  params.m = 7;
  auto index = std::make_unique<IvfPqIndex>(Metric::kAngular, params, 3);
  const Status st = index->Build(data);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(IvfPqTest, RejectsBadNbits) {
  FloatMatrix data = RandomMatrix(100, 32, 15);
  IndexParams params;
  params.m = 8;
  params.nbits = 16;
  auto index = std::make_unique<IvfPqIndex>(Metric::kAngular, params, 3);
  EXPECT_FALSE(index->Build(data).ok());
}

TEST(IvfSq8Test, QuantizationKeepsNeighborsRoughly) {
  FloatMatrix data = ClusteredMatrix(800, 16, 10, 0.3, 17);
  IndexParams params;
  params.nlist = 16;
  params.nprobe = 16;  // exhaustive probing isolates quantization loss
  auto index = std::make_unique<IvfSq8Index>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());
  FloatMatrix q = ClusteredMatrix(10, 16, 10, 0.33, 18);
  double sum = 0.0;
  for (size_t i = 0; i < q.rows(); ++i) {
    auto truth = BruteForceSearch(data, Metric::kAngular, q.Row(i), 10, nullptr);
    std::set<int64_t> expected;
    for (const auto& t : truth) expected.insert(t.id);
    auto hits = index->Search(q.Row(i), 10, nullptr);
    size_t found = 0;
    for (const auto& h : hits) found += expected.count(h.id);
    sum += found / 10.0;
  }
  EXPECT_GT(sum / q.rows(), 0.8);
}

TEST(HnswTest, RecallIncreasesWithEf) {
  const size_t n = 1500, dim = 24, k = 10;
  FloatMatrix data = ClusteredMatrix(n, dim, 20, 0.3, 19);
  FloatMatrix queries = ClusteredMatrix(16, dim, 20, 0.33, 20);
  IndexParams params;
  params.hnsw_m = 12;
  params.ef_construction = 100;
  auto index = std::make_unique<HnswIndex>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());

  auto recall_at = [&](int ef) {
    IndexParams p = params;
    p.ef = ef;
    index->UpdateSearchParams(p);
    double sum = 0.0;
    for (size_t q = 0; q < queries.rows(); ++q) {
      auto truth =
          BruteForceSearch(data, Metric::kAngular, queries.Row(q), k, nullptr);
      std::set<int64_t> expected;
      for (const auto& t : truth) expected.insert(t.id);
      auto hits = index->Search(queries.Row(q), k, nullptr);
      size_t found = 0;
      for (const auto& h : hits) found += expected.count(h.id);
      sum += static_cast<double>(found) / k;
    }
    return sum / queries.rows();
  };

  const double r_small = recall_at(10);
  const double r_large = recall_at(200);
  EXPECT_GE(r_large, r_small - 1e-9);
  EXPECT_GT(r_large, 0.95);
}

TEST(HnswTest, GraphHopsCounted) {
  FloatMatrix data = RandomMatrix(800, 16, 21);
  IndexParams params;
  auto index = std::make_unique<HnswIndex>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());
  WorkCounters wc;
  index->Search(data.Row(0), 5, &wc);
  EXPECT_GT(wc.graph_hops, 0u);
  EXPECT_GT(wc.full_distance_evals, 0u);
  EXPECT_LT(wc.full_distance_evals, 800u);  // sublinear vs brute force
}

TEST(HnswTest, RejectsBadParams) {
  FloatMatrix data = RandomMatrix(100, 8, 22);
  IndexParams params;
  params.hnsw_m = 1;  // too small
  auto index = std::make_unique<HnswIndex>(Metric::kAngular, params, 3);
  EXPECT_FALSE(index->Build(data).ok());
}

TEST(ScannTest, ReorderImprovesOverApproximate) {
  const size_t n = 1500, dim = 24, k = 10;
  FloatMatrix data = ClusteredMatrix(n, dim, 24, 0.3, 23);
  FloatMatrix queries = ClusteredMatrix(16, dim, 24, 0.33, 24);
  IndexParams params;
  params.nlist = 32;
  params.nprobe = 8;

  auto recall_with_reorder = [&](int reorder_k) {
    IndexParams p = params;
    p.reorder_k = reorder_k;
    auto index = std::make_unique<ScannIndex>(Metric::kAngular, p, 3);
    EXPECT_TRUE(index->Build(data).ok());
    double sum = 0.0;
    for (size_t q = 0; q < queries.rows(); ++q) {
      auto truth =
          BruteForceSearch(data, Metric::kAngular, queries.Row(q), k, nullptr);
      std::set<int64_t> expected;
      for (const auto& t : truth) expected.insert(t.id);
      auto hits = index->Search(queries.Row(q), k, nullptr);
      size_t found = 0;
      for (const auto& h : hits) found += expected.count(h.id);
      sum += static_cast<double>(found) / k;
    }
    return sum / queries.rows();
  };

  EXPECT_GE(recall_with_reorder(200), recall_with_reorder(10) - 1e-9);
}

TEST(ScannTest, ReorderWorkCounted) {
  FloatMatrix data = RandomMatrix(600, 16, 25);
  IndexParams params;
  params.nlist = 16;
  params.nprobe = 4;
  params.reorder_k = 50;
  auto index = std::make_unique<ScannIndex>(Metric::kAngular, params, 3);
  ASSERT_TRUE(index->Build(data).ok());
  WorkCounters wc;
  index->Search(data.Row(0), 5, &wc);
  EXPECT_GT(wc.reorder_evals, 0u);
  EXPECT_LE(wc.reorder_evals, 50u);
  EXPECT_GT(wc.code_distance_evals, 0u);
}

TEST(AutoIndexTest, DelegatesBySize) {
  auto small_index = CreateIndex(IndexType::kAutoIndex, Metric::kAngular, {}, 1);
  FloatMatrix small = RandomMatrix(100, 8, 26);
  ASSERT_TRUE(small_index->Build(small).ok());
  auto* as_auto = dynamic_cast<AutoIndex*>(small_index.get());
  ASSERT_NE(as_auto, nullptr);
  EXPECT_EQ(as_auto->delegate_type(), IndexType::kFlat);

  auto big_index = CreateIndex(IndexType::kAutoIndex, Metric::kAngular, {}, 1);
  FloatMatrix big = RandomMatrix(900, 8, 27);
  ASSERT_TRUE(big_index->Build(big).ok());
  auto* as_auto2 = dynamic_cast<AutoIndex*>(big_index.get());
  EXPECT_EQ(as_auto2->delegate_type(), IndexType::kHnsw);
}

TEST(FactoryTest, CreatesEveryType) {
  for (int t = 0; t < kNumIndexTypes; ++t) {
    auto index =
        CreateIndex(static_cast<IndexType>(t), Metric::kAngular, {}, 1);
    ASSERT_NE(index, nullptr) << t;
    EXPECT_EQ(static_cast<int>(index->type()), t);
  }
}

TEST(BuildSignatureTest, SearchParamsExcluded) {
  IndexParams a, b;
  a.nprobe = 4;
  b.nprobe = 200;  // search-time only
  EXPECT_EQ(BuildSignature(IndexType::kIvfFlat, a),
            BuildSignature(IndexType::kIvfFlat, b));
  a.nlist = 64;
  EXPECT_NE(BuildSignature(IndexType::kIvfFlat, a),
            BuildSignature(IndexType::kIvfFlat, b));
  // HNSW: ef excluded, M/efConstruction included.
  IndexParams h1, h2;
  h1.ef = 10;
  h2.ef = 400;
  EXPECT_EQ(BuildSignature(IndexType::kHnsw, h1),
            BuildSignature(IndexType::kHnsw, h2));
  h2.hnsw_m = 48;
  EXPECT_NE(BuildSignature(IndexType::kHnsw, h1),
            BuildSignature(IndexType::kHnsw, h2));
}

TEST(IndexMemoryTest, QuantizedSmallerThanFlatLists) {
  FloatMatrix data = RandomMatrix(2000, 32, 29);
  IndexParams params;
  params.nlist = 32;
  auto ivf = std::make_unique<IvfFlatIndex>(Metric::kAngular, params, 3);
  auto sq8 = std::make_unique<IvfSq8Index>(Metric::kAngular, params, 3);
  ASSERT_TRUE(ivf->Build(data).ok());
  ASSERT_TRUE(sq8->Build(data).ok());
  // SQ8 stores 1 byte/dim codes on top of ids; IVF_FLAT stores none but the
  // segment keeps floats. Compare code size to hypothetical float size.
  EXPECT_LT(sq8->MemoryBytes(), ivf->MemoryBytes() + data.MemoryBytes() / 2);
  EXPECT_GT(sq8->MemoryBytes(), ivf->MemoryBytes());
}

}  // namespace
}  // namespace vdt
