// Loopback end-to-end tests for the serving layer (src/net/server.h +
// client.h): a VdtServer on an ephemeral port, driven by VdtClient, must
// return results *identical* to the same typed requests executed in-process
// against the same engine — byte-for-byte on the distance floats. Also
// covers the robustness contract: concurrent clients during
// insert/delete/compact (this suite runs under TSan in CI), admission-control
// BUSY under queue saturation, timeout expiry, malformed frames on raw
// sockets, and graceful drain-on-shutdown with in-flight requests.
//
// The coalescing section pins the batching contract: replies served through
// the coalescing path are byte-for-byte identical to coalescing-disabled
// serving and to the in-process engine, batch composition follows the
// compatibility key (breakers split batches exactly where specified), and
// error replies land in the same stats as successes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/test_util.h"
#include "vdms/vdms.h"

namespace vdt {
namespace net {
namespace {

using testing_util::ClusteredMatrix;
using testing_util::RandomMatrix;

CollectionOptions ServingOptions(const std::string& name, IndexType type,
                                 int shards, size_t rows) {
  CollectionOptions opts;
  opts.name = name;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = rows;
  opts.index.type = type;
  opts.index.params.nlist = 8;
  opts.index.params.nprobe = 8;
  opts.system.build_index_threshold = 32;
  opts.system.num_shards = shards;
  return opts;
}

/// Asserts the wire reply is bit-identical to the in-process response:
/// same per-query neighbor lists (ids equal, distances equal as IEEE-754
/// bit patterns) and the same aggregate work counters.
void ExpectWireMatchesLocal(const SearchReplyWire& wire,
                            const SearchResponse& local) {
  ASSERT_EQ(wire.neighbors.size(), local.neighbors.size());
  for (size_t q = 0; q < wire.neighbors.size(); ++q) {
    ASSERT_EQ(wire.neighbors[q].size(), local.neighbors[q].size())
        << "query " << q;
    for (size_t j = 0; j < wire.neighbors[q].size(); ++j) {
      EXPECT_EQ(wire.neighbors[q][j].id, local.neighbors[q][j].id)
          << "query " << q << " rank " << j;
      uint32_t wire_bits, local_bits;
      std::memcpy(&wire_bits, &wire.neighbors[q][j].distance, 4);
      std::memcpy(&local_bits, &local.neighbors[q][j].distance, 4);
      EXPECT_EQ(wire_bits, local_bits) << "query " << q << " rank " << j;
    }
  }
  EXPECT_EQ(wire.work.full_distance_evals, local.work.full_distance_evals);
  EXPECT_EQ(wire.work.coarse_distance_evals, local.work.coarse_distance_evals);
  EXPECT_EQ(wire.work.code_distance_evals, local.work.code_distance_evals);
  EXPECT_EQ(wire.work.pq_lookup_ops, local.work.pq_lookup_ops);
  EXPECT_EQ(wire.work.table_build_flops, local.work.table_build_flops);
  EXPECT_EQ(wire.work.graph_hops, local.work.graph_hops);
  EXPECT_EQ(wire.work.reorder_evals, local.work.reorder_evals);
  EXPECT_EQ(wire.work.shard_scatters, local.work.shard_scatters);
  EXPECT_EQ(wire.work.gather_candidates, local.work.gather_candidates);
}

// ------------------------------------------------------- raw-socket helpers

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void RawSendAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

/// Reads exactly `len` bytes; false on clean EOF before any byte.
bool RawRecvAll(int fd, uint8_t* out, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one reply frame (header + payload); false on EOF/short read.
bool RawReadFrame(int fd, FrameHeader* header, std::vector<uint8_t>* payload) {
  uint8_t head[kFrameHeaderBytes];
  if (!RawRecvAll(fd, head, sizeof(head))) return false;
  if (!DecodeFrameHeader(head, sizeof(head), kMaxPayloadBytes, header).ok()) {
    return false;
  }
  payload->resize(header->payload_len);
  return header->payload_len == 0 ||
         RawRecvAll(fd, payload->data(), payload->size());
}

// ------------------------------------------------------------------- parity

TEST(ServingTest, WireResultsMatchInProcessFlatAndAnnSharded) {
  VdmsEngine engine;
  // FLAT across 3 shards and an ANN index (IVF_FLAT) across 2 shards: the
  // parity claim must hold for exact scatter/gather and for probe-bounded
  // search alike.
  ASSERT_TRUE(
      engine.CreateCollection(ServingOptions("flat", IndexType::kFlat, 3, 600))
          .ok());
  ASSERT_TRUE(
      engine
          .CreateCollection(ServingOptions("ivf", IndexType::kIvfFlat, 2, 600))
          .ok());
  const FloatMatrix data = ClusteredMatrix(600, 16, 8, 0.3, 91);
  for (const char* name : {"flat", "ivf"}) {
    ASSERT_TRUE(engine.Insert(name, data).ok());
    ASSERT_TRUE(engine.Flush(name).ok());
  }

  VdtServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  const FloatMatrix queries = RandomMatrix(16, 16, 92);
  for (const char* name : {"flat", "ivf"}) {
    SearchRequest request = SearchRequest::Batch(queries, 5);
    const auto wire = client.Search(name, request);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    const auto local = engine.Search(name, request);
    ASSERT_TRUE(local.ok());
    ExpectWireMatchesLocal(*wire, *local);
  }

  // Per-request knob override crosses the wire and changes the result the
  // same way it does in-process (nprobe=1 narrows the IVF probe set).
  SearchRequest narrow = SearchRequest::Batch(queries, 5);
  narrow.params = IndexParams{};
  narrow.params->nprobe = 1;
  const auto wire = client.Search("ivf", narrow);
  ASSERT_TRUE(wire.ok());
  const auto local = engine.Search("ivf", narrow);
  ASSERT_TRUE(local.ok());
  ExpectWireMatchesLocal(*wire, *local);
  // The override genuinely bit: probing 1 of 8 lists does less work.
  const auto full = engine.Search("ivf", SearchRequest::Batch(queries, 5));
  ASSERT_TRUE(full.ok());
  EXPECT_LT(local->work.full_distance_evals, full->work.full_distance_evals);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ServingTest, InsertDeleteStatsOverWire) {
  VdmsEngine engine;
  ASSERT_TRUE(
      engine
          .CreateCollection(ServingOptions("c", IndexType::kIvfFlat, 2, 300))
          .ok());
  ASSERT_TRUE(engine.Insert("c", RandomMatrix(300, 8, 7)).ok());

  VdtServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const auto total = client.Insert("c", RandomMatrix(10, 8, 8));
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, 310u);
  auto stats = engine.GetStats("c");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_rows, 310u);

  // Ids 300..309 are the rows just inserted; 999999 is unknown (ignored).
  const auto deleted = client.Delete("c", {300, 301, 302, 999999});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 3u);

  const auto wire_stats = client.Stats("c");
  ASSERT_TRUE(wire_stats.ok());
  stats = engine.GetStats("c");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(wire_stats->has_collection);
  EXPECT_EQ(wire_stats->total_rows, stats->total_rows);
  EXPECT_EQ(wire_stats->stored_rows, stats->stored_rows);
  EXPECT_EQ(wire_stats->live_rows, stats->live_rows);
  EXPECT_EQ(wire_stats->tombstoned_rows, stats->tombstoned_rows);
  EXPECT_EQ(wire_stats->num_shards, stats->num_shards);
  // The three wire requests above all succeeded and were counted.
  EXPECT_GE(wire_stats->requests_ok, 2u);
  EXPECT_EQ(wire_stats->busy_rejected, 0u);
  EXPECT_EQ(wire_stats->protocol_errors, 0u);

  // Server-wide stats (empty collection name) carry no collection section.
  const auto server_stats = client.Stats();
  ASSERT_TRUE(server_stats.ok());
  EXPECT_FALSE(server_stats->has_collection);
  EXPECT_GE(server_stats->endpoints[static_cast<int>(Op::kInsert) - 1].count,
            1u);
  server.Stop();
}

// ------------------------------------------------------------ typed errors

TEST(ServingTest, TypedErrorsCrossTheWire) {
  VdmsEngine engine;
  ASSERT_TRUE(
      engine.CreateCollection(ServingOptions("c", IndexType::kFlat, 1, 100))
          .ok());
  ASSERT_TRUE(engine.Insert("c", RandomMatrix(100, 8, 3)).ok());

  VdtServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Unknown collection: the engine's NotFound crosses the wire intact.
  auto missing =
      client.Search("nope", SearchRequest::Batch(RandomMatrix(1, 8, 4), 3));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Dim mismatch is the engine's empty-results contract (not an error) —
  // the wire path must mirror in-process behavior exactly, including here.
  auto bad_dim =
      client.Search("c", SearchRequest::Batch(RandomMatrix(1, 16, 4), 3));
  ASSERT_TRUE(bad_dim.ok());
  ASSERT_EQ(bad_dim->neighbors.size(), 1u);
  EXPECT_TRUE(bad_dim->neighbors[0].empty());

  // k == 0 is rejected at the protocol layer with a typed error.
  auto zero_k =
      client.Search("c", SearchRequest::Batch(RandomMatrix(1, 8, 4), 0));
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  // Filters are a client-side rejection (predicates don't serialize).
  SearchRequest filtered = SearchRequest::Batch(RandomMatrix(1, 8, 4), 3);
  filtered.filter = [](int64_t) { return true; };
  EXPECT_EQ(client.Search("c", filtered).status().code(),
            StatusCode::kInvalidArgument);

  // The connection survived all four errors.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(server.counters().protocol_errors.load(), 1u);
  server.Stop();
}

TEST(ServingTest, MalformedFramesDoNotKillServer) {
  VdmsEngine engine;
  VdtServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Bad version byte: typed FailedPrecondition error, connection intact —
  // the next (valid) frame on the same socket is answered normally.
  {
    const int fd = RawConnect(server.port());
    std::vector<uint8_t> frame;
    EncodeFrame(static_cast<uint8_t>(Op::kPing), 7, {}, &frame);
    frame[2] = 99;  // version
    RawSendAll(fd, frame);
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, kErrorOp);
    EXPECT_EQ(header.request_id, 7u);
    ErrorReplyWire error;
    ASSERT_TRUE(DecodeErrorReply(payload.data(), payload.size(), &error).ok());
    EXPECT_EQ(error.code, StatusCode::kFailedPrecondition);

    frame.clear();
    EncodeFrame(static_cast<uint8_t>(Op::kPing), 8, {}, &frame);
    RawSendAll(fd, frame);
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, static_cast<uint8_t>(Op::kPing) | kReplyBit);
    ::close(fd);
  }

  // Unknown op byte: typed InvalidArgument, connection intact.
  {
    const int fd = RawConnect(server.port());
    std::vector<uint8_t> frame;
    EncodeFrame(/*op=*/0x42, 9, {}, &frame);
    RawSendAll(fd, frame);
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, kErrorOp);
    ErrorReplyWire error;
    ASSERT_TRUE(DecodeErrorReply(payload.data(), payload.size(), &error).ok());
    EXPECT_EQ(error.code, StatusCode::kInvalidArgument);
    ::close(fd);
  }

  // Undecodable payload on a valid frame: typed error, connection intact.
  {
    const int fd = RawConnect(server.port());
    std::vector<uint8_t> frame;
    EncodeFrame(static_cast<uint8_t>(Op::kSearch), 10, {0xDE, 0xAD}, &frame);
    RawSendAll(fd, frame);
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, kErrorOp);
    ::close(fd);
  }

  // Bad magic: unframeable stream — the server answers once (best effort,
  // request id 0 since no frame decoded) and closes *that* connection.
  {
    const int fd = RawConnect(server.port());
    RawSendAll(fd, std::vector<uint8_t>(32, 0xAB));
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, kErrorOp);
    EXPECT_EQ(header.request_id, 0u);
    uint8_t byte;
    EXPECT_FALSE(RawRecvAll(fd, &byte, 1));  // then EOF
    ::close(fd);
  }

  // Oversized declared payload: same framing-error teardown.
  {
    const int fd = RawConnect(server.port());
    std::vector<uint8_t> frame;
    EncodeFrame(static_cast<uint8_t>(Op::kPing), 11, {}, &frame);
    const uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(frame.data() + 8, &huge, sizeof(huge));
    RawSendAll(fd, frame);
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
    EXPECT_EQ(header.op, kErrorOp);
    ErrorReplyWire error;
    ASSERT_TRUE(DecodeErrorReply(payload.data(), payload.size(), &error).ok());
    EXPECT_EQ(error.code, StatusCode::kResourceExhausted);
    uint8_t byte;
    EXPECT_FALSE(RawRecvAll(fd, &byte, 1));  // then EOF
    ::close(fd);
  }

  // After all of that, the server is alive and healthy.
  EXPECT_TRUE(server.running());
  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(server.counters().protocol_errors.load(), 2u);
  server.Stop();
}

// -------------------------------------------------- admission + timeouts

TEST(ServingTest, BusyUnderQueueSaturation) {
  VdmsEngine engine;
  ServerOptions options;
  options.num_workers = 1;
  options.queue_depth = 2;
  options.worker_delay_for_tests_ms = 200;  // pins the only worker
  VdtServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // 8 near-simultaneous pings against 1 worker + depth-2 queue: at most 3
  // can be in the system, so at least 5 must be answered BUSY immediately.
  constexpr int kClients = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      VdtClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      const Status st = client.Ping();
      if (st.ok()) {
        ok_count.fetch_add(1);
      } else if (st.code() == StatusCode::kResourceExhausted) {
        busy_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load() + busy_count.load(), kClients);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GE(busy_count.load(), 1);  // >= 5 in theory; >= 1 is timing-safe
  EXPECT_GE(ok_count.load(), 1);    // the in-service request always lands
  EXPECT_EQ(server.counters().busy_rejected.load(),
            static_cast<uint64_t>(busy_count.load()));
  // Every ping got exactly one terminal reply, and every terminal reply —
  // BUSY included — is priced into the endpoint histogram and the ok/error
  // counter split.
  EXPECT_EQ(server.latency(Op::kPing).Count(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(server.counters().requests_ok.load() +
                server.counters().requests_error.load(),
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(server.counters().requests_error.load(),
            static_cast<uint64_t>(busy_count.load()));

  // BUSY is load shedding, not a failure: the server serves normally after.
  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(ServingTest, TimeoutExpiryAnswersTyped) {
  VdmsEngine engine;
  ServerOptions options;
  options.num_workers = 1;
  options.request_timeout_ms = 10;
  options.worker_delay_for_tests_ms = 60;  // every queue wait exceeds 10ms
  VdtServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status st = client.Ping();
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st.ToString();
  EXPECT_GE(server.counters().timed_out.load(), 1u);
  // A timeout is a terminal error reply: counted and priced like any other.
  EXPECT_GE(server.counters().requests_error.load(), 1u);
  EXPECT_GE(server.latency(Op::kPing).Count(), 1u);
  server.Stop();
}

// ----------------------------------------------------------------- drain

TEST(ServingTest, StopDrainsQueuedRequests) {
  VdmsEngine engine;
  ServerOptions options;
  options.num_workers = 1;
  options.queue_depth = 16;
  options.worker_delay_for_tests_ms = 150;
  VdtServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Three in-flight pings: one in service, two queued. Stop() must answer
  // all three (accepted work is never dropped), then tear down.
  constexpr int kClients = 3;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      VdtClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      if (client.Ping().ok()) ok_count.fetch_add(1);
    });
  }
  // Let the dispatcher read and enqueue all three frames (the worker is
  // still sleeping on the first), then shut down mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(75));
  server.Stop();
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kClients);
  EXPECT_FALSE(server.running());
  // Stop() is idempotent and the port is released.
  server.Stop();
  VdtClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

// ------------------------------------------------------------- coalescing

TEST(ServingTest, CoalescedRepliesBitIdenticalAcrossPaths) {
  VdmsEngine engine;
  // FLAT across 3 shards and IVF across 2: the bit-parity claim must hold
  // for exact scatter/gather and probe-bounded search alike.
  ASSERT_TRUE(
      engine.CreateCollection(ServingOptions("flat", IndexType::kFlat, 3, 600))
          .ok());
  ASSERT_TRUE(
      engine
          .CreateCollection(ServingOptions("ivf", IndexType::kIvfFlat, 2, 600))
          .ok());
  const FloatMatrix data = ClusteredMatrix(600, 16, 8, 0.3, 181);
  for (const char* name : {"flat", "ivf"}) {
    ASSERT_TRUE(engine.Insert(name, data).ok());
    ASSERT_TRUE(engine.Flush(name).ok());
  }

  // Coalescing on: a single slow worker, so concurrent requests pile up in
  // its queue and get batched. Coalescing off: the plain serve path against
  // the same engine.
  ServerOptions on;
  on.num_workers = 1;
  on.queue_depth = 64;
  on.coalesce_max = 32;
  on.worker_delay_for_tests_ms = 40;
  VdtServer coalesced(&engine, on);
  ASSERT_TRUE(coalesced.Start().ok());
  ServerOptions off;
  off.coalesce_max = 1;
  VdtServer uncoalesced(&engine, off);
  ASSERT_TRUE(uncoalesced.Start().ok());

  // 6 threads x 4 rounds of distinct 2-query batches. Threads mix FLAT and
  // IVF targets and two of them carry a knob override — three different
  // compatibility keys interleaving in one queue, so batches form AND break
  // while the parity below is checked on every single reply.
  constexpr int kThreads = 6;
  constexpr int kRounds = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VdtClient on_client;
      VdtClient off_client;
      ASSERT_TRUE(on_client.Connect("127.0.0.1", coalesced.port()).ok());
      ASSERT_TRUE(off_client.Connect("127.0.0.1", uncoalesced.port()).ok());
      const std::string name = (t < 3) ? "flat" : "ivf";
      for (int r = 0; r < kRounds; ++r) {
        SearchRequest request =
            SearchRequest::Batch(RandomMatrix(2, 16, 500 + t * 16 + r), 5);
        if (t >= 4) {
          request.params = IndexParams{};
          request.params->nprobe = 2;
        }
        const auto local = engine.Search(name, request);
        ASSERT_TRUE(local.ok());
        const auto on_reply = on_client.Search(name, request);
        ASSERT_TRUE(on_reply.ok()) << on_reply.status().ToString();
        ExpectWireMatchesLocal(*on_reply, *local);
        const auto off_reply = off_client.Search(name, request);
        ASSERT_TRUE(off_reply.ok()) << off_reply.status().ToString();
        ExpectWireMatchesLocal(*off_reply, *local);
      }
    });
  }
  for (auto& t : threads) t.join();

  // With one 40ms-per-batch worker and 6 concurrent clients, batching
  // genuinely happened — the parity assertions above covered coalesced
  // executions, not 24 accidental batches of one.
  EXPECT_GE(coalesced.counters().coalesced_requests.load(), 1u);
  EXPECT_GE(coalesced.coalesce_batch_sizes().Count(), 1u);
  EXPECT_EQ(uncoalesced.counters().coalesced_requests.load(), 0u);
  EXPECT_EQ(uncoalesced.coalesce_batch_sizes().Count(), 0u);
  EXPECT_EQ(coalesced.counters().requests_error.load(), 0u);
  coalesced.Stop();
  uncoalesced.Stop();
}

TEST(ServingTest, CoalesceDrainsCompatibleAndBreaksOnMismatch) {
  VdmsEngine engine;
  ASSERT_TRUE(
      engine
          .CreateCollection(ServingOptions("c", IndexType::kIvfFlat, 2, 300))
          .ok());
  ASSERT_TRUE(engine.Insert("c", ClusteredMatrix(300, 8, 4, 0.3, 77)).ok());
  ASSERT_TRUE(engine.Flush("c").ok());

  // One worker + a generous window makes batch composition deterministic:
  // the worker holds each batch open until a breaker arrives (all frames
  // land within the window) or the window expires.
  ServerOptions options;
  options.num_workers = 1;
  options.queue_depth = 64;
  options.coalesce_max = 32;
  options.coalesce_window_us = 150000;
  VdtServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  const FloatMatrix queries = RandomMatrix(6, 8, 78);
  auto search_frame = [&](uint32_t id, uint32_t k, size_t begin, size_t end) {
    SearchRequestWire wire;
    wire.collection = "c";
    wire.k = k;
    wire.queries = queries.Slice(begin, end);
    std::vector<uint8_t> frame;
    EncodeFrame(static_cast<uint8_t>(Op::kSearch), id,
                EncodeSearchRequest(wire), &frame);
    return frame;
  };

  // One burst on one connection: ids 1+2 coalesce (k=5), id 3 (k=3) breaks
  // that batch and heads the next with id 4 (k=3, two queries), the Ping
  // breaks again, id 6 runs as a batch of one after its window expires.
  std::vector<uint8_t> burst;
  for (const auto& frame :
       {search_frame(1, 5, 0, 1), search_frame(2, 5, 1, 2),
        search_frame(3, 3, 2, 3), search_frame(4, 3, 3, 5)}) {
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  EncodeFrame(static_cast<uint8_t>(Op::kPing), 5, {}, &burst);
  {
    const auto frame = search_frame(6, 5, 5, 6);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }

  const int fd = RawConnect(server.port());
  RawSendAll(fd, burst);

  // Replies come back in request order (single worker; demux sends in
  // member order), and every Search reply must be bit-identical to the
  // in-process response for that request *alone*.
  struct Expected {
    uint32_t id;
    uint32_t k;
    size_t begin;
    size_t end;
  };
  const std::vector<Expected> expected = {{1, 5, 0, 1}, {2, 5, 1, 2},
                                          {3, 3, 2, 3}, {4, 3, 3, 5},
                                          {5, 0, 0, 0}, {6, 5, 5, 6}};
  for (const Expected& e : expected) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload)) << "request " << e.id;
    EXPECT_EQ(header.request_id, e.id);
    if (e.id == 5) {
      EXPECT_EQ(header.op, static_cast<uint8_t>(Op::kPing) | kReplyBit);
      continue;
    }
    ASSERT_EQ(header.op, static_cast<uint8_t>(Op::kSearch) | kReplyBit);
    SearchReplyWire reply;
    ASSERT_TRUE(DecodeSearchReply(payload.data(), payload.size(), &reply).ok());
    const auto local = engine.Search(
        "c", SearchRequest::Batch(queries.Slice(e.begin, e.end), e.k));
    ASSERT_TRUE(local.ok());
    ExpectWireMatchesLocal(reply, *local);
  }
  ::close(fd);

  // Batches executed: {1,2}, {3,4}, {6} — two piggybacked requests, three
  // coalesce-path executions (size-1 batches count too).
  EXPECT_EQ(server.coalesce_batch_sizes().Count(), 3u);
  EXPECT_EQ(server.counters().coalesced_requests.load(), 2u);
  EXPECT_EQ(server.counters().requests_ok.load(), 6u);
  EXPECT_EQ(server.counters().requests_error.load(), 0u);
  server.Stop();
}

TEST(ServingTest, InsertRacingDropReturnsTypedError) {
  VdmsEngine engine;
  ASSERT_TRUE(
      engine.CreateCollection(ServingOptions("c", IndexType::kFlat, 1, 100))
          .ok());

  // The hook fires between the successful engine Insert and the stats read
  // that prices the reply — exactly the window a concurrent Drop can hit.
  ServerOptions options;
  options.post_insert_hook_for_tests = [&engine] {
    ASSERT_TRUE(engine.DropCollection("c").ok());
  };
  VdtServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const auto total = client.Insert("c", RandomMatrix(5, 8, 1));
  // Before the fix this fabricated a success with total_rows = 0; the lost
  // race must surface as the engine's typed error instead.
  ASSERT_FALSE(total.ok());
  EXPECT_EQ(total.status().code(), StatusCode::kNotFound);
  EXPECT_GE(server.counters().requests_error.load(), 1u);
  EXPECT_TRUE(client.Ping().ok());  // the connection survived
  server.Stop();
}

TEST(ServingTest, ErrorRepliesAreCountedAndPriced) {
  VdmsEngine engine;
  VdtServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // An undecodable Search payload is a terminal error reply: it must land
  // in the Search endpoint's latency histogram and in requests_error, and
  // both must survive the wire round-trip of the Stats op.
  const int fd = RawConnect(server.port());
  std::vector<uint8_t> frame;
  EncodeFrame(static_cast<uint8_t>(Op::kSearch), 21, {0xBA, 0xD0}, &frame);
  RawSendAll(fd, frame);
  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RawReadFrame(fd, &header, &payload));
  EXPECT_EQ(header.op, kErrorOp);
  ::close(fd);

  EXPECT_EQ(server.latency(Op::kSearch).Count(), 1u);
  EXPECT_EQ(server.counters().requests_error.load(), 1u);
  EXPECT_GE(server.counters().protocol_errors.load(), 1u);

  VdtClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->requests_error, 1u);
  EXPECT_EQ(stats->endpoints[static_cast<int>(Op::kSearch) - 1].count, 1u);
  // The payload never decoded, so no batch was formed or recorded.
  EXPECT_EQ(stats->coalesce_batch.count, 0u);
  EXPECT_EQ(stats->coalesced_requests, 0u);
  server.Stop();
}

// ----------------------------------------------- concurrency (TSan target)

TEST(ServingTest, ConcurrentClientsDuringInsertDeleteCompact) {
  VdmsEngine engine;
  auto opts = ServingOptions("churn", IndexType::kIvfFlat, 2, 400);
  opts.system.insert_buf_size_mb = 0.01;  // frequent seals => index churn
  ASSERT_TRUE(engine.CreateCollection(opts).ok());
  ASSERT_TRUE(engine.Insert("churn", ClusteredMatrix(400, 16, 8, 0.3, 51)).ok());
  ASSERT_TRUE(engine.Flush("churn").ok());

  ServerOptions soptions;
  soptions.num_workers = 4;
  soptions.queue_depth = 256;  // no BUSY shedding in this test
  VdtServer server(&engine, soptions);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> searches_ok{0};
  std::atomic<int> failures{0};

  // 3 wire searchers: every reply must be well-formed (sizes bounded by k,
  // distances ascending) no matter what the writers are doing.
  std::vector<std::thread> searchers;
  for (int t = 0; t < 3; ++t) {
    searchers.emplace_back([&, t] {
      VdtClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      const FloatMatrix queries = RandomMatrix(4, 16, 60 + t);
      for (int iter = 0; iter < 40; ++iter) {
        const auto reply =
            client.Search("churn", SearchRequest::Batch(queries, 5));
        if (!reply.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool well_formed = reply->neighbors.size() == queries.rows();
        for (const auto& hits : reply->neighbors) {
          well_formed &= hits.size() <= 5;
          for (size_t j = 1; j < hits.size(); ++j) {
            well_formed &= hits[j - 1].distance <= hits[j].distance;
          }
        }
        if (well_formed) {
          searches_ok.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }

  // 1 wire writer: inserts and deletes over the same dataplane.
  std::thread wire_writer([&] {
    VdtClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    int64_t next_id = 400;
    for (int iter = 0; iter < 15; ++iter) {
      if (!client.Insert("churn", RandomMatrix(8, 16, 70 + iter)).ok()) {
        failures.fetch_add(1);
      }
      std::vector<int64_t> ids = {next_id, next_id + 1};
      next_id += 8;
      if (!client.Delete("churn", ids).ok()) failures.fetch_add(1);
    }
  });

  // In-process maintenance rides along: delete/compact/flush churn the
  // snapshot while wire requests are in flight.
  std::thread maintenance([&] {
    Rng rng(99);
    while (!stop.load()) {
      std::vector<int64_t> ids;
      for (int i = 0; i < 4; ++i) {
        ids.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{400})));
      }
      (void)engine.Delete("churn", ids);
      (void)engine.Compact("churn");
      (void)engine.Flush("churn");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& t : searchers) t.join();
  wire_writer.join();
  stop.store(true);
  maintenance.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(searches_ok.load(), 3 * 40);
}

}  // namespace
}  // namespace net
}  // namespace vdt
