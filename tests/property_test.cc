// Cross-module property tests: invariants that must hold across parameter
// sweeps — collection search correctness under arbitrary segment layouts,
// the dynamic-lifecycle oracle harness (randomized insert/delete/search
// sequences against a brute-force live-set reference, across seal and
// compaction boundaries), index recall monotonicity, hypervolume
// monotonicity, NPI/EHVI sanity, cost-model monotonicities, and
// failure-injection paths.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>
#include <utility>

#include "mobo/ehvi.h"
#include "mobo/hypervolume.h"
#include "tests/test_util.h"
#include "tuner/evaluator.h"
#include "workload/replay.h"

namespace vdt {
namespace {

using testing_util::ClusteredMatrix;
using testing_util::RandomMatrix;

// ---------------------------------------------------------------- layouts

struct LayoutCase {
  double max_size_mb;
  double seal_proportion;
  double buf_mb;
  int threshold;
};

class CollectionLayoutTest : public ::testing::TestWithParam<LayoutCase> {};

// Whatever the segment layout, a FLAT collection must return exactly the
// global brute-force answer (segmentation must never lose results).
TEST_P(CollectionLayoutTest, FlatSearchIsExactUnderAnyLayout) {
  const LayoutCase lc = GetParam();
  const size_t n = 1000, dim = 16, k = 12;
  FloatMatrix data = RandomMatrix(n, dim, 101);

  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = n;
  opts.index.type = IndexType::kFlat;
  opts.system.segment_max_size_mb = lc.max_size_mb;
  opts.system.seal_proportion = lc.seal_proportion;
  opts.system.insert_buf_size_mb = lc.buf_mb;
  opts.system.build_index_threshold = lc.threshold;
  Collection coll(opts);
  ASSERT_TRUE(coll.Insert(data).ok());
  ASSERT_TRUE(coll.Flush().ok());

  FloatMatrix queries = RandomMatrix(8, dim, 102);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto expected =
        BruteForceSearch(data, Metric::kAngular, queries.Row(q), k, nullptr);
    const auto got = coll.Search(queries.Row(q), k, nullptr);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, CollectionLayoutTest,
    ::testing::Values(LayoutCase{2048, 1.0, 256, 32},   // one giant segment
                      LayoutCase{100, 0.1, 1.0, 32},    // many small segments
                      LayoutCase{100, 0.1, 1.0, 4096},  // nothing indexed
                      LayoutCase{64, 0.05, 0.5, 32},    // tiny everything
                      LayoutCase{512, 0.12, 16, 128})); // Milvus defaults

// Total rows are preserved and ids are unique under any layout.
TEST_P(CollectionLayoutTest, IdsArePreservedAndUnique) {
  const LayoutCase lc = GetParam();
  const size_t n = 600, dim = 8;
  FloatMatrix data = RandomMatrix(n, dim, 103);

  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = n;
  opts.index.type = IndexType::kFlat;
  opts.system.segment_max_size_mb = lc.max_size_mb;
  opts.system.seal_proportion = lc.seal_proportion;
  opts.system.insert_buf_size_mb = lc.buf_mb;
  opts.system.build_index_threshold = lc.threshold;
  Collection coll(opts);
  ASSERT_TRUE(coll.Insert(data).ok());
  ASSERT_TRUE(coll.Flush().ok());
  EXPECT_EQ(coll.Stats().total_rows, n);

  // Self-query: every stored vector must find itself (distance ~0).
  std::set<int64_t> found;
  for (size_t i = 0; i < n; i += 37) {
    const auto hits = coll.Search(data.Row(i), 1, nullptr);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, static_cast<int64_t>(i));
    EXPECT_LT(hits[0].distance, 1e-5f);
    found.insert(hits[0].id);
  }
  EXPECT_EQ(found.size(), (n + 36) / 37);
}

// --------------------------------------------- dynamic lifecycle oracle

// Brute-force reference over the live set: an independent mirror of what
// the collection should contain. Deliberately reimplements top-k with a
// plain sort (no TopKCollector, no RowFilter) so the oracle shares no code
// path with the system under test.
class LiveSetOracle {
 public:
  LiveSetOracle(const FloatMatrix* data, Metric metric)
      : data_(data), metric_(metric), state_(data->rows(), 0) {}

  void Insert(size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) state_[i] = 1;
  }
  void Delete(int64_t id) {
    if (id >= 0 && id < static_cast<int64_t>(state_.size())) state_[id] = 2;
  }
  bool IsLive(int64_t id) const {
    return id >= 0 && id < static_cast<int64_t>(state_.size()) &&
           state_[id] == 1;
  }
  size_t live() const {
    size_t n = 0;
    for (const uint8_t s : state_) n += s == 1 ? 1 : 0;
    return n;
  }
  std::vector<int64_t> LiveIds() const {
    std::vector<int64_t> ids;
    for (size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == 1) ids.push_back(static_cast<int64_t>(i));
    }
    return ids;
  }

  /// Exact top-k ids over the live set, distance-ascending (ties by id).
  std::vector<int64_t> TopK(const float* query, size_t k) const {
    std::vector<std::pair<float, int64_t>> scored;
    for (size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] != 1) continue;
      scored.emplace_back(
          Distance(metric_, query, data_->Row(i), data_->dim()),
          static_cast<int64_t>(i));
    }
    std::sort(scored.begin(), scored.end());
    if (scored.size() > k) scored.resize(k);
    std::vector<int64_t> ids;
    ids.reserve(scored.size());
    for (const auto& [d, id] : scored) ids.push_back(id);
    return ids;
  }

 private:
  const FloatMatrix* data_;
  Metric metric_;
  std::vector<uint8_t> state_;  // 0 = not inserted, 1 = live, 2 = deleted
};

class LifecycleOracleTest
    : public ::testing::TestWithParam<std::tuple<IndexType, uint64_t>> {};

// Randomized insert/delete/search sequences, checked step by step against
// the brute-force live-set oracle, across seal and compaction boundaries.
// Hard invariants for every index type: no tombstoned id ever surfaces, and
// never more than min(k, live) results. FLAT must match the oracle exactly;
// the ANN types must keep mean live-set recall above a tolerance.
TEST_P(LifecycleOracleTest, FilteredSearchMatchesLiveSetOracle) {
  const auto [type, seed] = GetParam();
  const size_t n = 1600, dim = 16, k = 10;
  const FloatMatrix data = ClusteredMatrix(n, dim, 10, 0.3, seed);
  const FloatMatrix queries = ClusteredMatrix(12, dim, 10, 0.33, seed ^ 0x9);

  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = n;
  opts.index.type = type;
  // Generous search effort so ANN recall stays near-exact; the harness is
  // probing lifecycle correctness, not recall/speed tradeoffs.
  opts.index.params.nlist = 12;
  opts.index.params.nprobe = 12;
  opts.index.params.m = 8;
  opts.index.params.nbits = 8;
  opts.index.params.hnsw_m = 16;
  opts.index.params.ef_construction = 128;
  opts.index.params.ef = 96;
  opts.index.params.reorder_k = 120;
  // Layout: ~240-row sealed segments, 40-row insert buffer, everything
  // above 32 rows indexed, compaction at >25% tombstoned.
  opts.system.segment_max_size_mb = 100.0;
  opts.system.seal_proportion = 0.15;
  opts.system.insert_buf_size_mb = 2.5;
  opts.system.build_index_threshold = 32;
  opts.system.compaction_deleted_ratio = 0.25;
  opts.seed = seed;
  Collection coll(opts);
  LiveSetOracle oracle(&data, Metric::kAngular);
  Rng rng(seed ^ static_cast<uint64_t>(type));

  double recall_sum = 0.0;
  size_t searches = 0;
  auto check_searches = [&]() {
    for (size_t q = 0; q < queries.rows(); q += 3) {
      const auto got = coll.Search(queries.Row(q), k, nullptr);
      const auto expected = oracle.TopK(queries.Row(q), k);
      const size_t live = oracle.live();
      ASSERT_LE(got.size(), std::min(k, live));
      for (const Neighbor& hit : got) {
        ASSERT_TRUE(oracle.IsLive(hit.id))
            << "tombstoned or never-inserted id " << hit.id << " surfaced";
      }
      if (type == IndexType::kFlat) {
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, expected[i]) << "rank " << i;
        }
      } else if (!expected.empty()) {
        const std::set<int64_t> truth(expected.begin(), expected.end());
        size_t found = 0;
        for (const Neighbor& hit : got) found += truth.count(hit.id);
        recall_sum +=
            static_cast<double>(found) / static_cast<double>(truth.size());
        ++searches;
      }
    }
  };

  // Mixed timeline: insert chunks, delete random live samples, search after
  // every step. Segment seals and compactions trigger inline as the knobs
  // dictate.
  size_t pos = 0;
  while (pos < n) {
    const size_t chunk =
        std::min(n - pos, 50 + static_cast<size_t>(rng.UniformInt(150)));
    ASSERT_TRUE(coll.Insert(data.Slice(pos, pos + chunk)).ok());
    oracle.Insert(pos, pos + chunk);
    pos += chunk;

    if (rng.Uniform() < 0.7) {
      auto live_ids = oracle.LiveIds();
      rng.Shuffle(&live_ids);
      const size_t want = static_cast<size_t>(
          static_cast<double>(live_ids.size()) *
          rng.Uniform(0.05, 0.2));
      live_ids.resize(want);
      ASSERT_TRUE(coll.Delete(live_ids).ok());
      for (const int64_t id : live_ids) oracle.Delete(id);
    }
    check_searches();
  }

  // Seal boundary: flush everything, re-check.
  ASSERT_TRUE(coll.Flush().ok());
  check_searches();

  // Compaction boundary: delete enough to trip the threshold everywhere,
  // force the pass, re-check.
  auto live_ids = oracle.LiveIds();
  rng.Shuffle(&live_ids);
  live_ids.resize(live_ids.size() / 2);
  ASSERT_TRUE(coll.Delete(live_ids).ok());
  for (const int64_t id : live_ids) oracle.Delete(id);
  size_t compacted = 0;
  ASSERT_TRUE(coll.Compact(&compacted).ok());
  check_searches();

  const CollectionStats stats = coll.Stats();
  EXPECT_EQ(stats.live_rows, oracle.live());
  EXPECT_GT(stats.num_compactions, 0u);
  if (type != IndexType::kFlat) {
    ASSERT_GT(searches, 0u);
    // PQ's ADC scoring is lossy by design; every other ANN type runs at
    // near-exhaustive effort here.
    const double tolerance = type == IndexType::kIvfPq ? 0.8 : 0.9;
    EXPECT_GE(recall_sum / static_cast<double>(searches), tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSeeds, LifecycleOracleTest,
    ::testing::Combine(::testing::Values(IndexType::kFlat, IndexType::kIvfFlat,
                                         IndexType::kIvfSq8, IndexType::kIvfPq,
                                         IndexType::kHnsw, IndexType::kScann),
                       ::testing::Values(201u, 202u)),
    [](const ::testing::TestParamInfo<std::tuple<IndexType, uint64_t>>& info) {
      return std::string(IndexTypeName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------- hypervolume

class HvMonotoneTest : public ::testing::TestWithParam<uint64_t> {};

// Adding any point never decreases hypervolume; adding a dominated point
// never increases it.
TEST_P(HvMonotoneTest, AdditionMonotonicity) {
  Rng rng(GetParam());
  std::vector<Point2> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.Uniform(0.1, 3.0), rng.Uniform(0.1, 3.0)});
  }
  const Point2 ref = {0, 0};
  double hv = Hypervolume2D(pts, ref);
  for (int i = 0; i < 8; ++i) {
    const Point2 extra = {rng.Uniform(0.1, 3.0), rng.Uniform(0.1, 3.0)};
    pts.push_back(extra);
    const double hv2 = Hypervolume2D(pts, ref);
    EXPECT_GE(hv2, hv - 1e-12);
    hv = hv2;
  }
  // A point below the reference changes nothing.
  pts.push_back({-1.0, -1.0});
  EXPECT_NEAR(Hypervolume2D(pts, ref), hv, 1e-12);
}

// EHVI of a point deep inside the dominated region tends to zero; EHVI of a
// clear improver approximates its deterministic HVI as variance shrinks.
TEST_P(HvMonotoneTest, EhviLimits) {
  Rng rng(GetParam() ^ 0xE);
  std::vector<Point2> raw;
  for (int i = 0; i < 6; ++i) {
    raw.push_back({rng.Uniform(1.0, 2.0), rng.Uniform(1.0, 2.0)});
  }
  const auto front = ParetoFront(raw);
  const Point2 ref = {0, 0};

  BivariateGaussian dominated{0.2, 0.01, 0.2, 0.01};
  EXPECT_LT(EhviQuadrature(dominated, front, ref), 1e-6);

  const Point2 improver = {2.5, 2.5};
  BivariateGaussian sharp{improver[0], 1e-6, improver[1], 1e-6};
  EXPECT_NEAR(EhviQuadrature(sharp, front, ref),
              HypervolumeImprovement2D(improver, front, ref), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------------------- cost model

class CostMonotoneTest : public ::testing::TestWithParam<int> {};

// QPS is monotone non-increasing in every work counter.
TEST_P(CostMonotoneTest, QpsMonotoneInWork) {
  const int which = GetParam();
  CostModelParams params;
  SystemConfig sys;
  CollectionStats stats;
  stats.num_sealed_segments = 4;

  WorkCounters base;
  base.full_distance_evals = 5000;
  base.coarse_distance_evals = 500;
  base.code_distance_evals = 2000;
  base.pq_lookup_ops = 10000;
  base.graph_hops = 300;
  base.table_build_flops = 4000;

  WorkCounters heavier = base;
  switch (which) {
    case 0: heavier.full_distance_evals *= 3; break;
    case 1: heavier.coarse_distance_evals *= 3; break;
    case 2: heavier.code_distance_evals *= 3; break;
    case 3: heavier.pq_lookup_ops *= 3; break;
    case 4: heavier.graph_hops *= 3; break;
    case 5: heavier.table_build_flops *= 3; break;
  }
  EXPECT_GT(ComputeQps(params, base, 64, 48, stats, sys, 10),
            ComputeQps(params, heavier, 64, 48, stats, sys, 10));
}

INSTANTIATE_TEST_SUITE_P(Counters, CostMonotoneTest, ::testing::Range(0, 6));

// ----------------------------------------------------- failure injection

// Every infeasible-parameter path surfaces as a failed evaluation (never a
// crash, never silent success).
TEST(FailureInjectionTest, InfeasibleConfigsFailCleanly) {
  const auto data = GenerateDataset(DatasetProfile::kGlove, 700, 24, 7);
  const auto workload = MakeWorkload(DatasetProfile::kGlove, data, 6, 10, 7);
  VdmsEvaluatorOptions opts;
  opts.profile = DatasetProfile::kGlove;
  VdmsEvaluator evaluator(&data, &workload, opts);
  ParamSpace space;

  // PQ m does not divide dim=24.
  {
    TuningConfig c = space.DefaultConfig(IndexType::kIvfPq);
    c.index.m = 5;
    const EvalOutcome out = evaluator.Evaluate(c);
    EXPECT_TRUE(out.failed);
    EXPECT_FALSE(out.fail_reason.empty());
  }
  // HNSW M below the validity floor.
  {
    TuningConfig c = space.DefaultConfig(IndexType::kHnsw);
    c.index.hnsw_m = 1;
    const EvalOutcome out = evaluator.Evaluate(c);
    EXPECT_TRUE(out.failed);
  }
  // Throughput below the replay timeout floor: strangled concurrency on an
  // exhaustive index.
  {
    TuningConfig c = space.DefaultConfig(IndexType::kFlat);
    c.system.max_read_concurrency = 1;
    c.system.graceful_time_ms = 0.0;
    const EvalOutcome out = evaluator.Evaluate(c);
    EXPECT_TRUE(out.failed) << "qps=" << out.qps;
  }
  // A failed evaluation still reports simulated time (the paper's 15-minute
  // cap burns budget).
  {
    TuningConfig c = space.DefaultConfig(IndexType::kIvfPq);
    c.index.m = 5;
    const EvalOutcome out = evaluator.Evaluate(c);
    EXPECT_GT(out.eval_seconds, 0.0);
  }
}

// ------------------------------------------------------------- replay k

class RecallEffortTest : public ::testing::TestWithParam<int> {};

// More probes never hurt collection-level recall (within noise): sweeps
// nprobe across the whole range on one layout.
TEST_P(RecallEffortTest, CollectionRecallMonotoneInNprobe) {
  const auto data = GenerateDataset(DatasetProfile::kKeywordMatch, 1200, 24, 9);
  const auto workload =
      MakeWorkload(DatasetProfile::kKeywordMatch, data, 10, 32, 9);
  VdmsEvaluatorOptions opts;
  opts.profile = DatasetProfile::kKeywordMatch;
  VdmsEvaluator evaluator(&data, &workload, opts);
  ParamSpace space;

  const int nprobe_lo = GetParam();
  const int nprobe_hi = nprobe_lo * 4;
  TuningConfig c = space.DefaultConfig(IndexType::kIvfFlat);
  c.index.nlist = 64;
  c.system.build_index_threshold = 32;

  c.index.nprobe = nprobe_lo;
  const EvalOutcome lo = evaluator.Evaluate(c);
  c.index.nprobe = nprobe_hi;
  const EvalOutcome hi = evaluator.Evaluate(c);
  ASSERT_FALSE(lo.failed);
  ASSERT_FALSE(hi.failed);
  EXPECT_GE(hi.recall + 1e-9, lo.recall);
  EXPECT_LE(hi.qps, lo.qps * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Probes, RecallEffortTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace vdt
