// Cross-backend index parity: the same data, the same index, the same
// queries must produce the same answers whether distances run through the
// scalar reference kernels or the native SIMD ones. Backends differ only
// by float-rounding (documented tolerance in index/kernels/kernels.h), so:
//  - exhaustive searches (FLAT; IVF/SCANN at full probe effort) must return
//    identical top-k *sets*, where mismatches are tolerated only for rows
//    whose distances tie with the k-th distance within the rounding bound;
//  - graph/quantized searches whose *build* consumed distances (HNSW
//    graphs, PQ codebooks) are compared by recall against an independent
//    double-precision oracle, plus cross-backend set overlap;
//  - a dynamic-lifecycle timeline (the LifecycleOracleTest harness pattern:
//    interleaved insert / delete / flush / compact with searches at every
//    checkpoint) must agree exactly on FLAT under both backends.
// The whole suite self-skips on machines with only the scalar backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "index/kernels/kernels.h"
#include "tests/test_util.h"
#include "vdms/collection.h"

namespace vdt {
namespace {

using testing_util::ClusteredMatrix;

/// Restores the active backend on scope exit.
class BackendGuard {
 public:
  BackendGuard() : saved_(kernels::Active().name) {}
  ~BackendGuard() { kernels::SetActive(saved_); }

 private:
  std::string saved_;
};

bool HaveTwoBackends() { return kernels::AvailableBackends().size() >= 2; }

const char* NativeName() {
  return kernels::AvailableBackends().back()->name;
}

/// Exact top-k ids by double-precision brute force — independent of every
/// float kernel, so it is the same ground truth for every backend.
std::vector<int64_t> OracleTopK(const FloatMatrix& data, Metric metric,
                                const float* query, size_t k) {
  std::vector<std::pair<double, int64_t>> scored;
  scored.reserve(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    const float* row = data.Row(i);
    double dot = 0.0, l2 = 0.0;
    for (size_t d = 0; d < data.dim(); ++d) {
      const double qa = query[d], rb = row[d];
      dot += qa * rb;
      l2 += (qa - rb) * (qa - rb);
    }
    const double dist = metric == Metric::kL2
                            ? l2
                            : (metric == Metric::kAngular ? 1.0 - dot : -dot);
    scored.emplace_back(dist, static_cast<int64_t>(i));
  }
  std::sort(scored.begin(), scored.end());
  if (scored.size() > k) scored.resize(k);
  std::vector<int64_t> ids;
  ids.reserve(scored.size());
  for (const auto& [d, id] : scored) ids.push_back(id);
  return ids;
}

double RecallAgainst(const std::vector<int64_t>& truth,
                     const std::vector<Neighbor>& got) {
  if (truth.empty()) return 1.0;
  const std::set<int64_t> t(truth.begin(), truth.end());
  size_t hit = 0;
  for (const Neighbor& nb : got) hit += t.count(nb.id);
  return static_cast<double>(hit) / static_cast<double>(t.size());
}

double Overlap(const std::vector<Neighbor>& a,
               const std::vector<Neighbor>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::set<int64_t> sa;
  for (const Neighbor& nb : a) sa.insert(nb.id);
  size_t hit = 0;
  for (const Neighbor& nb : b) hit += sa.count(nb.id);
  return static_cast<double>(hit) /
         static_cast<double>(std::max(a.size(), b.size()));
}

/// Asserts two result lists are the same set, tolerating id mismatches only
/// among rows whose distances sit within `tie_tol` of the k-th (worst)
/// distance — exactly the rows float rounding may legitimately reorder
/// across the k boundary. Distances of common ranks must agree to tie_tol.
void ExpectSameSetModuloTies(const std::vector<Neighbor>& a,
                             const std::vector<Neighbor>& b, double tie_tol,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  if (a.empty()) return;
  const double worst =
      std::max(a.back().distance, b.back().distance) + tie_tol;
  std::set<int64_t> sa, sb;
  for (const Neighbor& nb : a) sa.insert(nb.id);
  for (const Neighbor& nb : b) sb.insert(nb.id);
  for (const Neighbor& nb : a) {
    if (sb.count(nb.id) == 0) {
      EXPECT_GE(nb.distance, worst - 2 * tie_tol)
          << label << ": id " << nb.id
          << " missing from the other backend's set but not a boundary tie";
    }
  }
  for (const Neighbor& nb : b) {
    if (sa.count(nb.id) == 0) {
      EXPECT_GE(nb.distance, worst - 2 * tie_tol)
          << label << ": id " << nb.id
          << " missing from the other backend's set but not a boundary tie";
    }
  }
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].distance, b[i].distance, tie_tol)
        << label << " rank " << i;
  }
}

struct BackendRun {
  std::vector<std::vector<Neighbor>> results;  // per query
};

/// Builds an index of `type` over `data` under the named kernel backend and
/// searches every query. The build runs under the same backend as the
/// search — exactly what a process pinned to VDT_KERNEL=<name> would do.
BackendRun RunIndexUnder(const std::string& backend, IndexType type,
                         const IndexParams& params, const FloatMatrix& data,
                         const FloatMatrix& queries, size_t k) {
  EXPECT_TRUE(kernels::SetActive(backend));
  BackendRun run;
  auto index = CreateIndex(type, Metric::kAngular, params, /*seed=*/11);
  EXPECT_TRUE(index->Build(data).ok());
  for (size_t q = 0; q < queries.rows(); ++q) {
    run.results.push_back(index->Search(queries.Row(q), k, nullptr));
  }
  return run;
}

constexpr size_t kRows = 900;
constexpr size_t kDim = 24;
constexpr size_t kK = 10;
// Boundary-tie tolerance: generous multiple of the kernel rounding bound
// (~dim * eps) on O(1)-magnitude angular distances.
constexpr double kTieTol = 1e-4;

IndexParams FullEffortParams() {
  IndexParams p;
  p.nlist = 16;
  p.nprobe = 16;      // probe everything: partitioning cannot drop rows
  p.m = 8;
  p.nbits = 8;
  p.hnsw_m = 16;
  p.ef_construction = 128;
  p.ef = 128;
  p.reorder_k = static_cast<int>(kRows);  // re-rank every scanned row
  return p;
}

class CrossBackendParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HaveTwoBackends()) {
      GTEST_SKIP() << "only the scalar backend is available on this CPU";
    }
  }
  BackendGuard guard_;
  FloatMatrix data_ = ClusteredMatrix(kRows, kDim, 8, 0.3, 71);
  FloatMatrix queries_ = ClusteredMatrix(16, kDim, 8, 0.33, 72);
};

// FLAT is an exhaustive scan: scalar and native must return the same set.
TEST_F(CrossBackendParityTest, FlatTopKSetsIdentical) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kFlat,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kFlat,
                                    FullEffortParams(), data_, queries_, kK);
  for (size_t q = 0; q < queries_.rows(); ++q) {
    ExpectSameSetModuloTies(scalar.results[q], native.results[q], kTieTol,
                            "FLAT q" + std::to_string(q));
  }
}

// Every vectorized backend the CPU can run — not just whichever one
// "native" resolves to — must agree with scalar on the exhaustive scan.
// (With avx2 and avx512 both registered on one machine, native covers
// only the latter; this sweep keeps the rest honest.)
TEST_F(CrossBackendParityTest, FlatTopKSetsIdenticalOnEveryBackend) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kFlat,
                                    FullEffortParams(), data_, queries_, kK);
  for (const kernels::Backend* backend : kernels::AvailableBackends()) {
    if (std::string(backend->name) == "scalar") continue;
    const auto vec = RunIndexUnder(backend->name, IndexType::kFlat,
                                   FullEffortParams(), data_, queries_, kK);
    for (size_t q = 0; q < queries_.rows(); ++q) {
      ExpectSameSetModuloTies(
          scalar.results[q], vec.results[q], kTieTol,
          std::string("FLAT ") + backend->name + " q" + std::to_string(q));
    }
  }
}

// IVF_FLAT at nprobe == nlist scans every row exactly: the k-means
// partition may differ between backends (assignment consumes distances),
// but the scanned universe is identical, so the top-k sets must be too.
TEST_F(CrossBackendParityTest, IvfFlatFullProbeSetsIdentical) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kIvfFlat,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kIvfFlat,
                                    FullEffortParams(), data_, queries_, kK);
  for (size_t q = 0; q < queries_.rows(); ++q) {
    ExpectSameSetModuloTies(scalar.results[q], native.results[q], kTieTol,
                            "IVF_FLAT q" + std::to_string(q));
  }
}

// SCANN with reorder_k >= rows re-ranks everything it scans with exact
// distances, so at full probe effort it degenerates to FLAT: identical
// sets modulo boundary ties.
TEST_F(CrossBackendParityTest, ScannFullEffortSetsIdentical) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kScann,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kScann,
                                    FullEffortParams(), data_, queries_, kK);
  for (size_t q = 0; q < queries_.rows(); ++q) {
    ExpectSameSetModuloTies(scalar.results[q], native.results[q], kTieTol,
                            "SCANN q" + std::to_string(q));
  }
}

// IVF_SQ8 scores on quantized codes (the quantizer itself is min/max-based
// and backend-independent, so both backends scan identical codes), but the
// returned distances are code-space: sets may differ only at code-space
// boundary ties. Exception: a native backend may serve the quantized-dot
// slot with a fixed-point scheme (AVX-512 VNNI), whose documented error is
// dominated by query quantization — far beyond the float-rounding tie
// tolerance — so against such a backend parity is recall parity against
// the double-precision oracle plus cross-backend set overlap, the same
// standard the lossy PQ/HNSW tests use.
TEST_F(CrossBackendParityTest, IvfSq8FullProbeSetsIdenticalInCodeSpace) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kIvfSq8,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kIvfSq8,
                                    FullEffortParams(), data_, queries_, kK);
  const kernels::Backend* nb = kernels::ResolveBackend(NativeName());
  ASSERT_NE(nb, nullptr);
  const bool fixed_point_dot = nb->sq8_dot_i8 != nb->sq8_dot_batch;
  if (!fixed_point_dot) {
    for (size_t q = 0; q < queries_.rows(); ++q) {
      ExpectSameSetModuloTies(scalar.results[q], native.results[q], kTieTol,
                              "IVF_SQ8 q" + std::to_string(q));
    }
    return;
  }
  double recall_scalar = 0.0, recall_native = 0.0, overlap = 0.0;
  for (size_t q = 0; q < queries_.rows(); ++q) {
    const auto truth =
        OracleTopK(data_, Metric::kAngular, queries_.Row(q), kK);
    recall_scalar += RecallAgainst(truth, scalar.results[q]);
    recall_native += RecallAgainst(truth, native.results[q]);
    overlap += Overlap(scalar.results[q], native.results[q]);
  }
  const double n = static_cast<double>(queries_.rows());
  EXPECT_GE(recall_scalar / n, 0.9);
  EXPECT_GE(recall_native / n, 0.9);
  EXPECT_LE(std::fabs(recall_scalar - recall_native) / n, 0.1);
  EXPECT_GE(overlap / n, 0.8);
}

// HNSW builds a different (equally valid) graph under each backend — graph
// construction consumes distances — so parity here is recall parity: both
// backends must hit the same double-precision ground truth equally well,
// and their result sets must still largely agree.
TEST_F(CrossBackendParityTest, HnswRecallParityAndOverlap) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kHnsw,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kHnsw,
                                    FullEffortParams(), data_, queries_, kK);
  double recall_scalar = 0.0, recall_native = 0.0, overlap = 0.0;
  for (size_t q = 0; q < queries_.rows(); ++q) {
    const auto truth =
        OracleTopK(data_, Metric::kAngular, queries_.Row(q), kK);
    recall_scalar += RecallAgainst(truth, scalar.results[q]);
    recall_native += RecallAgainst(truth, native.results[q]);
    overlap += Overlap(scalar.results[q], native.results[q]);
  }
  const double n = static_cast<double>(queries_.rows());
  EXPECT_GE(recall_scalar / n, 0.9);
  EXPECT_GE(recall_native / n, 0.9);
  EXPECT_LE(std::fabs(recall_scalar - recall_native) / n, 0.1);
  EXPECT_GE(overlap / n, 0.8);
}

// IVF_PQ trains per-subspace codebooks with k-means (backend-dependent),
// and ADC scoring is lossy by design: parity is recall parity against the
// double-precision oracle.
TEST_F(CrossBackendParityTest, IvfPqRecallParity) {
  const auto scalar = RunIndexUnder("scalar", IndexType::kIvfPq,
                                    FullEffortParams(), data_, queries_, kK);
  const auto native = RunIndexUnder(NativeName(), IndexType::kIvfPq,
                                    FullEffortParams(), data_, queries_, kK);
  double recall_scalar = 0.0, recall_native = 0.0;
  for (size_t q = 0; q < queries_.rows(); ++q) {
    const auto truth =
        OracleTopK(data_, Metric::kAngular, queries_.Row(q), kK);
    recall_scalar += RecallAgainst(truth, scalar.results[q]);
    recall_native += RecallAgainst(truth, native.results[q]);
  }
  const double n = static_cast<double>(queries_.rows());
  EXPECT_GE(recall_scalar / n, 0.6);
  EXPECT_GE(recall_native / n, 0.6);
  EXPECT_LE(std::fabs(recall_scalar - recall_native) / n, 0.15);
}

// ---------------------------------------- lifecycle timeline parity

/// One scripted dynamic-lifecycle run (the LifecycleOracleTest harness
/// pattern, deterministic timeline): interleaved inserts and deletes with
/// searches at every checkpoint, across flush and compaction boundaries.
/// Returns the concatenated result ids of every checkpoint search.
std::vector<std::vector<Neighbor>> RunLifecycleUnder(
    const std::string& backend, IndexType type, const FloatMatrix& data,
    const FloatMatrix& queries) {
  EXPECT_TRUE(kernels::SetActive(backend));
  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = data.rows();
  opts.index.type = type;
  opts.index.params = FullEffortParams();
  opts.system.segment_max_size_mb = 100.0;
  opts.system.seal_proportion = 0.15;
  opts.system.insert_buf_size_mb = 2.5;
  opts.system.build_index_threshold = 32;
  opts.system.compaction_deleted_ratio = 0.25;
  opts.seed = 5;
  Collection coll(opts);
  Rng rng(404);  // same stream under both backends: identical timeline

  std::vector<std::vector<Neighbor>> checkpoints;
  auto search_all = [&]() {
    for (size_t q = 0; q < queries.rows(); ++q) {
      checkpoints.push_back(coll.Search(queries.Row(q), kK, nullptr));
    }
  };

  size_t pos = 0;
  std::vector<int64_t> live;
  while (pos < data.rows()) {
    const size_t chunk = std::min(data.rows() - pos,
                                  60 + static_cast<size_t>(rng.UniformInt(90)));
    EXPECT_TRUE(coll.Insert(data.Slice(pos, pos + chunk)).ok());
    for (size_t i = pos; i < pos + chunk; ++i) {
      live.push_back(static_cast<int64_t>(i));
    }
    pos += chunk;
    if (rng.Uniform() < 0.6 && live.size() > 20) {
      rng.Shuffle(&live);
      const size_t want = live.size() / 8;
      std::vector<int64_t> doomed(live.end() - want, live.end());
      live.resize(live.size() - want);
      EXPECT_TRUE(coll.Delete(doomed).ok());
    }
    search_all();
  }
  EXPECT_TRUE(coll.Flush().ok());
  search_all();
  rng.Shuffle(&live);
  std::vector<int64_t> doomed(live.begin() + live.size() / 2, live.end());
  EXPECT_TRUE(coll.Delete(doomed).ok());
  size_t compacted = 0;
  EXPECT_TRUE(coll.Compact(&compacted).ok());
  search_all();
  return checkpoints;
}

// FLAT collections are exhaustive at every tier (sealed, growing, buffer),
// so every checkpoint of the timeline must agree across backends modulo
// boundary ties — through seals, tombstones, and compactions.
TEST_F(CrossBackendParityTest, LifecycleTimelineFlatParity) {
  const auto scalar =
      RunLifecycleUnder("scalar", IndexType::kFlat, data_, queries_);
  const auto native =
      RunLifecycleUnder(NativeName(), IndexType::kFlat, data_, queries_);
  ASSERT_EQ(scalar.size(), native.size());
  for (size_t c = 0; c < scalar.size(); ++c) {
    ExpectSameSetModuloTies(scalar[c], native[c], kTieTol,
                            "checkpoint " + std::to_string(c));
  }
}

// Same timeline on IVF_FLAT at full probe effort: partition-independent.
TEST_F(CrossBackendParityTest, LifecycleTimelineIvfFlatParity) {
  const auto scalar =
      RunLifecycleUnder("scalar", IndexType::kIvfFlat, data_, queries_);
  const auto native =
      RunLifecycleUnder(NativeName(), IndexType::kIvfFlat, data_, queries_);
  ASSERT_EQ(scalar.size(), native.size());
  for (size_t c = 0; c < scalar.size(); ++c) {
    ExpectSameSetModuloTies(scalar[c], native[c], kTieTol,
                            "checkpoint " + std::to_string(c));
  }
}

// The stats surface reports which backend served the snapshot.
TEST_F(CrossBackendParityTest, StatsSurfaceActiveBackend) {
  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 10.0;
  opts.scale.actual_rows = 100;
  opts.index.type = IndexType::kFlat;
  ASSERT_TRUE(kernels::SetActive("scalar"));
  Collection coll(opts);
  ASSERT_TRUE(coll.Insert(data_.Slice(0, 100)).ok());
  EXPECT_STREQ(coll.Stats().kernel_backend, "scalar");
  ASSERT_TRUE(kernels::SetActive(NativeName()));
  ASSERT_TRUE(coll.Insert(data_.Slice(100, 200)).ok());
  EXPECT_STREQ(coll.Stats().kernel_backend, NativeName());
}

}  // namespace
}  // namespace vdt
