// Concurrency tests for the engine's snapshot read model: N searcher
// threads run against live Insert/Delete/Compact/Flush/Drop traffic and
// must always observe a valid published snapshot — k live rows, sorted,
// never a row tombstoned before the search began, never freed memory.
// This suite runs under the ASan/UBSan and TSan CI jobs; the sanitizers
// are the real assertions for the lifetime and data-race claims.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tests/test_util.h"
#include "vdms/vdms.h"

namespace vdt {
namespace {

using testing_util::RandomMatrix;

constexpr size_t kDim = 8;

CollectionOptions ChurnyOptions(const std::string& name, size_t rows,
                                double compaction_ratio = 0.2) {
  CollectionOptions opts;
  opts.name = name;
  opts.metric = Metric::kAngular;
  opts.index.type = IndexType::kIvfFlat;
  opts.index.params.nlist = 8;
  opts.index.params.nprobe = 8;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = rows;
  opts.system.segment_max_size_mb = 100.0;
  opts.system.seal_proportion = 0.1;  // ~10 sealed segments per full load
  opts.system.insert_buf_size_mb = 2.5;
  opts.system.build_index_threshold = 32;
  opts.system.compaction_deleted_ratio = compaction_ratio;
  return opts;
}

/// Structural invariants every result must satisfy no matter which snapshot
/// served it: at most k rows, ids in [0, max_id), unique, sorted by
/// distance ascending.
void ValidateHits(const std::vector<Neighbor>& hits, size_t k,
                  int64_t max_id) {
  EXPECT_LE(hits.size(), k);
  std::set<int64_t> seen;
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].id, 0);
    EXPECT_LT(hits[i].id, max_id);
    EXPECT_TRUE(seen.insert(hits[i].id).second) << "duplicate id";
    if (i > 0) {
      EXPECT_LE(hits[i - 1].distance, hits[i].distance);
    }
  }
}

TEST(EngineConcurrencyTest, SearchersSurviveInsertDeleteCompactFlush) {
  const size_t kRows = 600;
  const size_t kK = 5;
  const FloatMatrix data = RandomMatrix(kRows, kDim, 91);
  VdmsEngine engine;
  ASSERT_TRUE(engine.CreateCollection(ChurnyOptions("churn", kRows)).ok());
  ASSERT_TRUE(engine.Insert("churn", data.Slice(0, kRows / 2)).ok());
  ASSERT_TRUE(engine.Flush("churn").ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> searches{0};
  auto searcher = [&](uint64_t seed) {
    const FloatMatrix queries = RandomMatrix(8, kDim, seed);
    size_t q = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto response = engine.Search(
          "churn",
          SearchRequest::Single(queries.Row(q++ % queries.rows()), kDim, kK));
      EXPECT_TRUE(response.ok());
      if (!response.ok()) return;
      ValidateHits(response->top(), kK, static_cast<int64_t>(kRows));
      // Snapshot-consistent stats ride with every response.
      EXPECT_EQ(response->stats.live_rows + response->stats.tombstoned_rows,
                response->stats.stored_rows);
      searches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) threads.emplace_back(searcher, 101 + t);

  // The writer drives the full mutation surface while searches run.
  size_t inserted = kRows / 2;
  for (size_t round = 0; round < 6; ++round) {
    const size_t end = std::min(kRows, inserted + kRows / 12);
    if (end > inserted) {
      EXPECT_TRUE(engine.Insert("churn", data.Slice(inserted, end)).ok());
      inserted = end;
    }
    std::vector<int64_t> victims;
    for (size_t v = round; v < inserted; v += 17) {
      victims.push_back(static_cast<int64_t>(v));
    }
    EXPECT_TRUE(engine.Delete("churn", victims).ok());
    EXPECT_TRUE(engine.Compact("churn").ok());
    EXPECT_TRUE(engine.Flush("churn").ok());
  }

  // On a loaded (or single-core) machine the writer can finish before the
  // searchers get scheduled; keep them running until some searches landed.
  while (searches.load(std::memory_order_relaxed) < 40) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(searches.load(), 0u);
  const auto stats = engine.GetStats("churn");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_rows, kRows);
}

TEST(EngineConcurrencyTest, RowsTombstonedBeforeTheSearchNeverSurface) {
  const size_t kRows = 500;
  const int64_t kDeletedUpTo = 150;
  const FloatMatrix data = RandomMatrix(kRows, kDim, 92);
  VdmsEngine engine;
  ASSERT_TRUE(engine.CreateCollection(ChurnyOptions("tomb", kRows)).ok());
  ASSERT_TRUE(engine.Insert("tomb", data).ok());
  ASSERT_TRUE(engine.Flush("tomb").ok());

  // Synchronously tombstone [0, 150): every snapshot published from here on
  // excludes them, so no concurrent search may ever return one — snapshots
  // only move forward.
  std::vector<int64_t> victims;
  for (int64_t id = 0; id < kDeletedUpTo; ++id) victims.push_back(id);
  size_t deleted = 0;
  ASSERT_TRUE(engine.Delete("tomb", victims, &deleted).ok());
  ASSERT_EQ(deleted, static_cast<size_t>(kDeletedUpTo));

  std::atomic<bool> stop{false};
  std::atomic<size_t> searches{0};
  auto searcher = [&](uint64_t seed) {
    const FloatMatrix queries = RandomMatrix(8, kDim, seed);
    size_t q = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto response = engine.Search(
          "tomb",
          SearchRequest::Single(queries.Row(q++ % queries.rows()), kDim, 10));
      EXPECT_TRUE(response.ok());
      if (!response.ok()) return;
      for (const Neighbor& n : response->top()) {
        EXPECT_GE(n.id, kDeletedUpTo)
            << "row tombstoned before the search surfaced";
      }
      searches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 3; ++t) threads.emplace_back(searcher, 111 + t);

  // Concurrent deletes and compactions of *other* rows: older snapshots may
  // legally still return these, so the searchers only assert on [0, 150).
  for (int64_t id = kDeletedUpTo; id < kDeletedUpTo + 120; id += 3) {
    EXPECT_TRUE(engine.Delete("tomb", {id, id + 1}).ok());
  }
  EXPECT_TRUE(engine.Compact("tomb").ok());

  while (searches.load(std::memory_order_relaxed) < 30) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
}

TEST(EngineConcurrencyTest, InFlightSearchesFinishAcrossDrop) {
  const size_t kRows = 400;
  const FloatMatrix data = RandomMatrix(kRows, kDim, 93);
  VdmsEngine engine;
  ASSERT_TRUE(engine.CreateCollection(ChurnyOptions("gone", kRows)).ok());
  ASSERT_TRUE(engine.Insert("gone", data).ok());
  ASSERT_TRUE(engine.Flush("gone").ok());

  std::atomic<size_t> searches{0};
  auto searcher = [&](uint64_t seed) {
    const FloatMatrix queries = RandomMatrix(4, kDim, seed);
    size_t q = 0;
    while (true) {
      const auto response = engine.Search(
          "gone",
          SearchRequest::Single(queries.Row(q++ % queries.rows()), kDim, 3));
      if (!response.ok()) {
        // After the drop the only acceptable outcome is NotFound.
        EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
        return;
      }
      ValidateHits(response->top(), 3, static_cast<int64_t>(kRows));
      searches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) threads.emplace_back(searcher, 121 + t);

  // Let the searchers get going, then drop out from under them. No handles
  // are open, so the drop succeeds; in-flight searches finish on their own
  // reference and the collection is freed when the last one completes
  // (ASan/TSan verify the lifetime claim).
  while (searches.load(std::memory_order_relaxed) < 50) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(engine.DropCollection("gone").ok());
  for (auto& t : threads) t.join();
  EXPECT_FALSE(engine.HasCollection("gone"));
}

TEST(EngineConcurrencyTest, StatsStaySnapshotConsistentMidChurn) {
  const size_t kRows = 500;
  const FloatMatrix data = RandomMatrix(kRows, kDim, 94);
  VdmsEngine engine;
  // Compaction disabled: tombstones accumulate, so a torn read would show
  // stored != live + tombstoned.
  ASSERT_TRUE(
      engine.CreateCollection(ChurnyOptions("stats", kRows, 1.0)).ok());
  ASSERT_TRUE(engine.Insert("stats", data).ok());
  ASSERT_TRUE(engine.Flush("stats").ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto stats = engine.GetStats("stats");
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->live_rows + stats->tombstoned_rows,
                stats->stored_rows);
      EXPECT_LE(stats->live_rows, stats->total_rows);
      EXPECT_LE(stats->stored_rows, stats->total_rows);
      const auto memory = engine.GetMemory("stats");
      ASSERT_TRUE(memory.ok());
      EXPECT_GT(memory->TotalMb(), 0.0);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) threads.emplace_back(reader);

  for (int64_t id = 0; id + 4 < static_cast<int64_t>(kRows); id += 5) {
    EXPECT_TRUE(engine.Delete("stats", {id, id + 1, id + 2}).ok());
  }

  while (reads.load(std::memory_order_relaxed) < 30) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const auto final_stats = engine.GetStats("stats");
  ASSERT_TRUE(final_stats.ok());
  EXPECT_GT(final_stats->tombstoned_rows, 0u);
}

TEST(EngineConcurrencyTest, HandleChurnRacesDropSafely) {
  const size_t kRows = 64;
  const FloatMatrix data = RandomMatrix(kRows, kDim, 95);
  VdmsEngine engine;
  ASSERT_TRUE(engine.CreateCollection(ChurnyOptions("held", kRows)).ok());
  ASSERT_TRUE(engine.Insert("held", data).ok());

  auto churner = [&](uint64_t seed) {
    const FloatMatrix queries = RandomMatrix(2, kDim, seed);
    for (int i = 0; i < 200; ++i) {
      Result<CollectionHandle> opened = engine.Open("held");
      if (!opened.ok()) return;  // already dropped: fine
      CollectionHandle handle = std::move(*opened);
      CollectionHandle copy = handle;  // copies count
      const auto hits = copy->Search(queries.Row(i % 2), 2, nullptr);
      EXPECT_LE(hits.size(), 2u);
      // Both handles release at scope exit.
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) threads.emplace_back(churner, 131 + t);

  // A dropper races the handle churn: every refusal must name a positive
  // live-handle count, and the drop must eventually succeed once the
  // churners are done.
  bool dropped = false;
  while (!dropped) {
    const Status st = engine.DropCollection("held");
    if (st.ok()) {
      dropped = true;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
      EXPECT_NE(st.ToString().find("live handle"), std::string::npos);
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(engine.HasCollection("held"));
}

}  // namespace
}  // namespace vdt
