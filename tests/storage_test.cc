// Persistence subsystem tests: restart parity (a collection sealed, flushed,
// mutated through the WAL, then reopened must return bit-identical Search
// and Stats to the never-restarted collection — for every index family and
// across a compaction boundary), kill-style crash recovery against the
// brute-force live-set oracle, engine data-dir handling, and typed refusal
// of foreign/corrupt on-disk state.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "storage/collection_store.h"
#include "storage/file_io.h"
#include "tests/test_util.h"
#include "vdms/vdms.h"

namespace vdt {
namespace {

using testing_util::ClusteredMatrix;
using testing_util::RandomMatrix;

/// A scratch directory removed on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/vdt_storage_test_XXXXXX";
    path_ = mkdtemp(tmpl);
    EXPECT_FALSE(path_.empty());
  }
  ~TempDir() { (void)RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CollectionOptions ChurnOptions(IndexType type, size_t actual_rows,
                               uint64_t seed) {
  CollectionOptions opts;
  opts.name = "c";
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = actual_rows;
  opts.index.type = type;
  // Generous search effort: these tests probe persistence correctness, not
  // recall/speed tradeoffs.
  opts.index.params.nlist = 12;
  opts.index.params.nprobe = 12;
  opts.index.params.m = 8;
  opts.index.params.nbits = 8;
  opts.index.params.hnsw_m = 16;
  opts.index.params.ef_construction = 96;
  opts.index.params.ef = 96;
  opts.index.params.reorder_k = 120;
  // Layout: ~135-row sealed segments, ~36-row insert buffer, everything
  // above 32 rows indexed, compaction at >25% tombstoned, two shards.
  opts.system.segment_max_size_mb = 100.0;
  opts.system.seal_proportion = 0.15;
  opts.system.insert_buf_size_mb = 4.0;
  opts.system.build_index_threshold = 32;
  opts.system.compaction_deleted_ratio = 0.25;
  opts.system.num_shards = 2;
  opts.seed = seed;
  return opts;
}

void ExpectStatsEqual(const CollectionStats& a, const CollectionStats& b) {
  EXPECT_EQ(a.total_rows, b.total_rows);
  EXPECT_EQ(a.stored_rows, b.stored_rows);
  EXPECT_EQ(a.live_rows, b.live_rows);
  EXPECT_EQ(a.tombstoned_rows, b.tombstoned_rows);
  EXPECT_EQ(a.num_compactions, b.num_compactions);
  EXPECT_EQ(a.num_sealed_segments, b.num_sealed_segments);
  EXPECT_EQ(a.num_indexed_segments, b.num_indexed_segments);
  EXPECT_EQ(a.growing_rows, b.growing_rows);
  EXPECT_EQ(a.buffered_rows, b.buffered_rows);
  EXPECT_EQ(a.index_bytes_actual, b.index_bytes_actual);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].stored_rows, b.shards[s].stored_rows);
    EXPECT_EQ(a.shards[s].live_rows, b.shards[s].live_rows);
    EXPECT_EQ(a.shards[s].sealed_segments, b.shards[s].sealed_segments);
  }
}

// ------------------------------------------------------- restart parity

class RestartParityTest : public ::testing::TestWithParam<IndexType> {};

// The acceptance bar of the persistence subsystem: run a full lifecycle
// (seal, checkpointing flush, compaction-triggering deletes, a WAL tail of
// un-checkpointed inserts/deletes), record Search + Stats, tear the engine
// down, recover from disk, and demand *bit-identical* results — same ids,
// same float distances, same counters.
TEST_P(RestartParityTest, ReopenedCollectionIsBitIdentical) {
  const IndexType type = GetParam();
  const size_t n = 900, dim = 16, k = 10;
  const uint64_t seed = 77;
  const FloatMatrix data = ClusteredMatrix(n, dim, 10, 0.3, seed);
  const FloatMatrix queries = ClusteredMatrix(12, dim, 10, 0.33, seed ^ 0x9);

  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();

  std::vector<std::vector<Neighbor>> expected;
  CollectionStats expected_stats;
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(engine.CreateCollection(ChurnOptions(type, n, seed)).ok());
    // Sealed history: 600 rows, flushed (checkpoint: manifest + segment
    // files, WAL rotated away).
    ASSERT_TRUE(engine.Insert("c", data.Slice(0, 600)).ok());
    ASSERT_TRUE(engine.Flush("c").ok());
    // Compaction boundary: a dense delete of the oldest rows pushes early
    // segments past the 25% trigger, so replay must also reproduce the
    // rewrites (and their rebuild seeds).
    std::vector<int64_t> doomed;
    for (int64_t id = 0; id < 150; ++id) doomed.push_back(id);
    ASSERT_TRUE(engine.Delete("c", doomed).ok());
    ASSERT_TRUE(engine.Flush("c").ok());
    // WAL tail: everything after this checkpoint lives only in the log —
    // inserts (buffer + growing + an inline seal), deletes, and whatever
    // compaction they trigger.
    ASSERT_TRUE(engine.Insert("c", data.Slice(600, 900)).ok());
    std::vector<int64_t> tail_doomed;
    for (int64_t id = 600; id < 660; ++id) tail_doomed.push_back(id);
    ASSERT_TRUE(engine.Delete("c", tail_doomed).ok());

    auto handle = engine.Open("c");
    ASSERT_TRUE(handle.ok());
    expected_stats = (*handle)->Stats();
    ASSERT_GT(expected_stats.num_compactions, 0u)
        << "test layout no longer crosses a compaction boundary";
    for (size_t q = 0; q < queries.rows(); ++q) {
      expected.push_back((*handle)->Search(queries.Row(q), k, nullptr));
    }
  }  // engine torn down: only the files remain

  VdmsEngine reopened(eopts);
  ASSERT_TRUE(reopened.Open().ok());
  auto handle = reopened.Open("c");
  ASSERT_TRUE(handle.ok());
  ExpectStatsEqual((*handle)->Stats(), expected_stats);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto got = (*handle)->Search(queries.Row(q), k, nullptr);
    ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[q][i].id) << "query " << q << " rank " << i;
      // Bit-identical, not approximately equal: the restored collection
      // serves the same float bytes through the same index structures.
      EXPECT_EQ(got[i].distance, expected[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexTypes, RestartParityTest,
                         ::testing::Values(IndexType::kFlat,
                                           IndexType::kIvfFlat,
                                           IndexType::kIvfSq8,
                                           IndexType::kIvfPq, IndexType::kHnsw,
                                           IndexType::kScann,
                                           IndexType::kAutoIndex));

// Knob updates (search params, runtime system overrides) land in the WAL,
// so a reopened collection searches under the same knobs it crashed with.
TEST(StorageTest, KnobChangesSurviveRestart) {
  const size_t n = 500, dim = 12, k = 8;
  const FloatMatrix data = ClusteredMatrix(n, dim, 8, 0.3, 5);
  const FloatMatrix queries = ClusteredMatrix(6, dim, 8, 0.33, 6);

  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();

  std::vector<std::vector<Neighbor>> expected;
  IndexParams tightened;
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kIvfFlat, n, 5)).ok());
    ASSERT_TRUE(engine.Insert("c", data).ok());
    ASSERT_TRUE(engine.Flush("c").ok());
    auto handle = engine.Open("c");
    ASSERT_TRUE(handle.ok());
    tightened = (*handle)->options().index.params;
    tightened.nprobe = 2;  // deliberately lossy: results must still match
    (*handle)->UpdateSearchParams(tightened);
    SystemConfig sys = (*handle)->options().system;
    sys.compaction_deleted_ratio = 0.9;
    (*handle)->OverrideRuntimeSystem(sys);
    for (size_t q = 0; q < queries.rows(); ++q) {
      expected.push_back((*handle)->Search(queries.Row(q), k, nullptr));
    }
  }

  VdmsEngine reopened(eopts);
  ASSERT_TRUE(reopened.Open().ok());
  auto handle = reopened.Open("c");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->options().index.params.nprobe, tightened.nprobe);
  EXPECT_DOUBLE_EQ((*handle)->options().system.compaction_deleted_ratio, 0.9);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto got = (*handle)->Search(queries.Row(q), k, nullptr);
    ASSERT_EQ(got.size(), expected[q].size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[q][i].id);
      EXPECT_EQ(got[i].distance, expected[q][i].distance);
    }
  }
}

// --------------------------------------------- crash-recovery vs oracle

/// Brute-force live-set mirror (same shape as property_test.cc's oracle:
/// shares no code path with the system under test).
class LiveSetOracle {
 public:
  LiveSetOracle(const FloatMatrix* data, Metric metric)
      : data_(data), metric_(metric), state_(data->rows(), 0) {}

  void Insert(size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) state_[i] = 1;
  }
  void Delete(int64_t id) {
    if (id >= 0 && id < static_cast<int64_t>(state_.size())) state_[id] = 2;
  }
  std::vector<int64_t> LiveIds() const {
    std::vector<int64_t> ids;
    for (size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == 1) ids.push_back(static_cast<int64_t>(i));
    }
    return ids;
  }
  std::vector<int64_t> TopK(const float* query, size_t k) const {
    std::vector<std::pair<float, int64_t>> scored;
    for (size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] != 1) continue;
      scored.emplace_back(
          Distance(metric_, query, data_->Row(i), data_->dim()),
          static_cast<int64_t>(i));
    }
    std::sort(scored.begin(), scored.end());
    if (scored.size() > k) scored.resize(k);
    std::vector<int64_t> ids;
    ids.reserve(scored.size());
    for (const auto& [d, id] : scored) ids.push_back(id);
    return ids;
  }

 private:
  const FloatMatrix* data_;
  Metric metric_;
  std::vector<uint8_t> state_;
};

// Seeded churn (inserts, deletes, a mid-stream checkpoint), then a
// kill-style abandon: the engine is destroyed with un-checkpointed WAL
// records outstanding and *no* final Flush. Recovery must reconstruct the
// exact live set — verified against the brute-force oracle with FLAT
// (exact) search.
TEST(StorageTest, KillStyleChurnRecoveryMatchesOracle) {
  const size_t n = 1200, dim = 12, k = 10;
  const uint64_t seed = 909;
  const FloatMatrix data = ClusteredMatrix(n, dim, 10, 0.3, seed);
  const FloatMatrix queries = ClusteredMatrix(10, dim, 10, 0.33, seed ^ 0x5);

  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  LiveSetOracle oracle(&data, Metric::kAngular);
  Rng rng(seed);

  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kFlat, n, seed)).ok());
    size_t pos = 0;
    size_t steps = 0;
    while (pos < n) {
      const size_t chunk =
          std::min(n - pos, 50 + static_cast<size_t>(rng.UniformInt(150)));
      ASSERT_TRUE(engine.Insert("c", data.Slice(pos, pos + chunk)).ok());
      oracle.Insert(pos, pos + chunk);
      pos += chunk;
      if (rng.Uniform() < 0.7) {
        auto live_ids = oracle.LiveIds();
        rng.Shuffle(&live_ids);
        live_ids.resize(static_cast<size_t>(
            static_cast<double>(live_ids.size()) * rng.Uniform(0.05, 0.2)));
        ASSERT_TRUE(engine.Delete("c", live_ids).ok());
        for (const int64_t id : live_ids) oracle.Delete(id);
      }
      // One mid-stream checkpoint, so recovery exercises manifest-sealed
      // state *and* a WAL tail on top of it.
      if (++steps == 3) ASSERT_TRUE(engine.Flush("c").ok());
    }
  }  // killed: no final Flush, WAL tail outstanding

  VdmsEngine engine(eopts);
  ASSERT_TRUE(engine.Open().ok());
  auto handle = engine.Open("c");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->Stats().live_rows, oracle.LiveIds().size());
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto got = (*handle)->Search(queries.Row(q), k, nullptr);
    const auto expected = oracle.TopK(queries.Row(q), k);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i]) << "query " << q << " rank " << i;
    }
  }
}

// ------------------------------------------------- engine dir handling

TEST(StorageTest, OpenRequiresDataDir) {
  VdmsEngine engine;
  const Status st = engine.Open();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(StorageTest, OpenOnEmptyDirRecoversNothing) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path() + "/fresh";  // not yet created
  VdmsEngine engine(eopts);
  ASSERT_TRUE(engine.Open().ok());
  EXPECT_TRUE(engine.ListCollections().empty());
}

TEST(StorageTest, UnstorableCollectionNameIsRejected) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  VdmsEngine engine(eopts);
  CollectionOptions opts;
  for (const char* name : {"", "a/b", "..", "a b"}) {
    opts.name = name;
    const Status st = engine.CreateCollection(opts);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "'" << name << "'";
  }
  // In-memory engines keep accepting arbitrary names.
  VdmsEngine loose;
  opts.name = "a/b";
  EXPECT_TRUE(loose.CreateCollection(opts).ok());
}

TEST(StorageTest, DropCollectionRemovesDirectory) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  {
    VdmsEngine engine(eopts);
    CollectionOptions opts = ChurnOptions(IndexType::kFlat, 100, 1);
    ASSERT_TRUE(engine.CreateCollection(opts).ok());
    ASSERT_TRUE(PathExists(td.path() + "/c/MANIFEST"));
    ASSERT_TRUE(engine.DropCollection("c").ok());
    EXPECT_FALSE(PathExists(td.path() + "/c"));
  }
  VdmsEngine reopened(eopts);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_TRUE(reopened.ListCollections().empty());
}

TEST(StorageTest, RecoveredNameCollidesWithCreate) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kFlat, 100, 1)).ok());
  }
  VdmsEngine reopened(eopts);
  ASSERT_TRUE(reopened.Open().ok());
  const Status st =
      reopened.CreateCollection(ChurnOptions(IndexType::kFlat, 100, 1));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

// --------------------------------------------- typed corruption refusal

TEST(StorageTest, ForeignManifestRefusesStartup) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  ASSERT_TRUE(EnsureDir(td.path() + "/c").ok());
  const std::string garbage = "definitely not a VMAN manifest";
  ASSERT_TRUE(AtomicWriteFile(td.path() + "/c/MANIFEST",
                              std::vector<uint8_t>(garbage.begin(),
                                                   garbage.end()))
                  .ok());
  VdmsEngine engine(eopts);
  const Status st = engine.Open();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("manifest"), std::string::npos);
}

TEST(StorageTest, RelocatedManifestRefusesStartup) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kFlat, 100, 1)).ok());
  }
  // A valid store copied under the wrong directory name is someone else's
  // data: refuse rather than serve it under either name.
  ASSERT_EQ(std::rename((td.path() + "/c").c_str(),
                        (td.path() + "/not_c").c_str()),
            0);
  VdmsEngine engine(eopts);
  const Status st = engine.Open();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("foreign"), std::string::npos);
}

TEST(StorageTest, CorruptSegmentFileRefusesStartup) {
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kIvfFlat, 400, 3))
            .ok());
    const FloatMatrix data = RandomMatrix(400, 8, 3);
    ASSERT_TRUE(engine.Insert("c", data).ok());
    ASSERT_TRUE(engine.Flush("c").ok());
  }
  // Flip one byte in the middle of the first segment file.
  auto names = ListDir(td.path() + "/c");
  ASSERT_TRUE(names.ok());
  std::string victim;
  for (const std::string& name : *names) {
    if (name.find(".vseg") != std::string::npos) {
      victim = td.path() + "/c/" + name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  auto bytes = ReadFileBytes(victim);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0xFF;
  ASSERT_TRUE(AtomicWriteFile(victim, *bytes).ok());

  VdmsEngine engine(eopts);
  const Status st = engine.Open();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StorageTest, TornWalTailIsTruncatedAndRecovered) {
  const size_t n = 300, dim = 8, k = 5;
  const FloatMatrix data = RandomMatrix(n, dim, 11);
  TempDir td;
  VdmsEngineOptions eopts;
  eopts.data_dir = td.path();
  std::vector<Neighbor> expected;
  {
    VdmsEngine engine(eopts);
    ASSERT_TRUE(
        engine.CreateCollection(ChurnOptions(IndexType::kFlat, n, 11)).ok());
    ASSERT_TRUE(engine.Insert("c", data).ok());  // WAL only, never flushed
    auto handle = engine.Open("c");
    ASSERT_TRUE(handle.ok());
    expected = (*handle)->Search(data.Row(0), k, nullptr);
  }
  // A torn final record: garbage bytes appended mid-write by the "crash".
  auto names = ListDir(td.path() + "/c");
  ASSERT_TRUE(names.ok());
  std::string wal;
  for (const std::string& name : *names) {
    if (name.find(".vwal") != std::string::npos) wal = td.path() + "/c/" + name;
  }
  ASSERT_FALSE(wal.empty());
  auto bytes = ReadFileBytes(wal);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> torn = *bytes;
  torn.push_back(2);  // a Delete type byte with a nonsense frame behind it
  torn.push_back(0xAB);
  torn.push_back(0xCD);
  ASSERT_TRUE(AtomicWriteFile(wal, torn).ok());

  VdmsEngine engine(eopts);
  ASSERT_TRUE(engine.Open().ok());
  auto handle = engine.Open("c");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->Stats().live_rows, n);
  const auto got = (*handle)->Search(data.Row(0), k, nullptr);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id);
    EXPECT_EQ(got[i].distance, expected[i].distance);
  }
}

}  // namespace
}  // namespace vdt
