// Tests for src/tuner: parameter space codec, evaluator (incl. cache and
// failure handling), the tuning loop, every baseline, VDTuner's components
// (NPI, scoring, abandonment, constraint model, bootstrapping), and SHAP.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "tests/test_util.h"
#include "tuner/opentuner_like.h"
#include "tuner/ottertune_like.h"
#include "tuner/qehvi_tuner.h"
#include "tuner/random_tuner.h"
#include "tuner/shap.h"
#include "tuner/vdtuner.h"

namespace vdt {
namespace {

// ------------------------------------------------------------ param space

// The paper's 16 dimensions plus the compaction trigger ratio (dynamic-data
// extension) and the shard count (scatter/gather serving extension) = 18.
TEST(ParamSpaceTest, HasEighteenDimensions) {
  ParamSpace space;
  EXPECT_EQ(space.dims(), 18u);
  EXPECT_EQ(static_cast<size_t>(kNumParamDims), 18u);
}

TEST(ParamSpaceTest, EncodeDecodeRoundTrip) {
  ParamSpace space;
  TuningConfig c;
  c.index_type = IndexType::kScann;
  c.index.nlist = 301;
  c.index.nprobe = 36;
  c.index.reorder_k = 283;
  c.system.segment_max_size_mb = 777.0;
  c.system.seal_proportion = 0.4;
  const TuningConfig back = space.Decode(space.Encode(c));
  EXPECT_EQ(back.index_type, IndexType::kScann);
  EXPECT_NEAR(back.index.nlist, 301, 2);  // log-grid rounding
  EXPECT_NEAR(back.index.nprobe, 36, 1);
  EXPECT_NEAR(back.index.reorder_k, 283, 2);
  EXPECT_NEAR(back.system.segment_max_size_mb, 777.0, 5.0);
  EXPECT_NEAR(back.system.seal_proportion, 0.4, 1e-6);
}

TEST(ParamSpaceTest, DecodeClampsOutOfRange) {
  ParamSpace space;
  std::vector<double> x(space.dims(), 2.0);  // above 1
  const TuningConfig c = space.Decode(x);
  EXPECT_LE(c.index.nlist, 1024);
  EXPECT_LE(c.system.cache_ratio, 0.9);
  std::vector<double> lo(space.dims(), -1.0);
  const TuningConfig cl = space.Decode(lo);
  EXPECT_GE(cl.index.nprobe, 1);
  EXPECT_GE(cl.system.seal_proportion, 0.05);
}

TEST(ParamSpaceTest, IndexTypeCodecCoversAllTypes) {
  ParamSpace space;
  for (int t = 0; t < kNumIndexTypes; ++t) {
    const auto type = static_cast<IndexType>(t);
    EXPECT_EQ(space.DecodeIndexType(space.EncodeIndexType(type)), type);
  }
}

TEST(ParamSpaceTest, ActiveDimsMatchTableOne) {
  ParamSpace space;
  auto has = [](const std::vector<size_t>& v, size_t d) {
    return std::find(v.begin(), v.end(), d) != v.end();
  };
  const auto ivf = space.ActiveDims(IndexType::kIvfFlat);
  EXPECT_TRUE(has(ivf, kDimNlist));
  EXPECT_TRUE(has(ivf, kDimNprobe));
  EXPECT_FALSE(has(ivf, kDimHnswM));
  const auto pq = space.ActiveDims(IndexType::kIvfPq);
  EXPECT_TRUE(has(pq, kDimPqM));
  EXPECT_TRUE(has(pq, kDimPqNbits));
  const auto hnsw = space.ActiveDims(IndexType::kHnsw);
  EXPECT_TRUE(has(hnsw, kDimHnswM));
  EXPECT_TRUE(has(hnsw, kDimEf));
  EXPECT_FALSE(has(hnsw, kDimNlist));
  const auto scann = space.ActiveDims(IndexType::kScann);
  EXPECT_TRUE(has(scann, kDimReorderK));
  const auto flat = space.ActiveDims(IndexType::kFlat);
  EXPECT_FALSE(has(flat, kDimNlist));
  // Every type keeps the paper's 7 system dims; the compaction ratio is
  // inert without deletes, so it is active only on dynamic workloads.
  ParamSpace dynamic(/*dynamic_workload=*/true);
  for (int t = 0; t < kNumIndexTypes; ++t) {
    const auto dims = space.ActiveDims(static_cast<IndexType>(t));
    for (size_t d = kDimSegmentMaxSize; d < kNumParamDims; ++d) {
      if (d == kDimCompactionRatio) {
        EXPECT_FALSE(has(dims, d)) << "type " << t;
        continue;
      }
      EXPECT_TRUE(has(dims, d)) << "type " << t << " missing system dim " << d;
    }
    EXPECT_TRUE(has(dynamic.ActiveDims(static_cast<IndexType>(t)),
                    kDimCompactionRatio))
        << "type " << t;
  }
}

TEST(ParamSpaceTest, PinFixesInactiveDims) {
  ParamSpace space;
  Rng rng(3);
  std::vector<double> x = space.SamplePoint(&rng);
  space.PinForIndexType(IndexType::kHnsw, &x);
  const TuningConfig c = space.Decode(x);
  EXPECT_EQ(c.index_type, IndexType::kHnsw);
  // IVF parameters pinned to defaults.
  EXPECT_EQ(c.index.nlist, 128);
  EXPECT_EQ(c.index.nprobe, 16);
}

TEST(ParamSpaceTest, DefaultConfigMatchesMilvusDefaults) {
  ParamSpace space;
  const TuningConfig c = space.DefaultConfig(IndexType::kHnsw);
  EXPECT_EQ(c.index_type, IndexType::kHnsw);
  EXPECT_EQ(c.index.hnsw_m, 16);
  EXPECT_EQ(c.index.ef_construction, 128);
  EXPECT_NEAR(c.system.segment_max_size_mb, 512.0, 1e-9);
  EXPECT_NEAR(c.system.seal_proportion, 0.12, 1e-9);
}

// ------------------------------------------------------------ synthetic
// evaluator for fast tuner-mechanics tests

/// A closed-form surface with a known structure: SCANN dominates, FLAT is
/// slow, recall trades off against speed via nprobe/ef-like dimensions.
class SyntheticEvaluator : public Evaluator {
 public:
  EvalOutcome Evaluate(const TuningConfig& config) override {
    ++calls_;
    EvalOutcome out;
    const double type_speed[] = {0.25, 0.8, 0.9, 1.0, 0.9, 1.2, 0.7};
    const double type_recall[] = {1.0, 0.9, 0.8, 0.55, 0.95, 0.92, 0.9};
    const int t = static_cast<int>(config.index_type);

    // Search effort: larger probes/ef raise recall, lower speed.
    double effort = 0.5;
    switch (config.index_type) {
      case IndexType::kIvfFlat:
      case IndexType::kIvfSq8:
      case IndexType::kIvfPq:
        effort = config.index.nprobe / 256.0;
        break;
      case IndexType::kScann:
        effort = 0.6 * config.index.nprobe / 256.0 +
                 0.4 * config.index.reorder_k / 1000.0;
        break;
      case IndexType::kHnsw:
        effort = config.index.ef / 512.0;
        break;
      default:
        effort = 0.5;
    }
    // System term: a narrow interdependent sweet spot (the paper's
    // Challenge 1) — seal proportion must sit near 0.5 AND graceful time
    // must be high; the penalty is multiplicative, not additive.
    const double seal_term =
        std::exp(-std::pow((config.system.seal_proportion - 0.5) / 0.18, 2));
    const double graceful_term =
        0.5 + 0.5 * std::min(1.0, config.system.graceful_time_ms / 500.0);
    const double sys_quality = (0.35 + 0.65 * seal_term) * graceful_term;
    // Sharding term: intra-query scatter parallelism helps until the
    // per-shard fan-out overhead dominates — a mild peak at 4 shards,
    // exactly 1.0 at the num_shards=1 default (and at the 16 extreme) so
    // every pre-sharding absolute expectation on this surface still holds.
    const double u =
        std::log2(static_cast<double>(config.system.num_shards)) / 4.0;
    const double shard_term = 1.0 + 0.48 * u * (1.0 - u);

    out.qps =
        1500.0 * type_speed[t] * (1.2 - effort) * sys_quality * shard_term;
    out.recall = std::min(
        1.0, type_recall[t] * (0.55 + 0.5 * std::sqrt(std::max(0.0, effort))));
    out.memory_gib = 2.0 + config.system.segment_max_size_mb / 1024.0 +
                     config.system.cache_ratio;
    out.eval_seconds = 100.0;
    return out;
  }

  int calls() const { return calls_; }

 private:
  int calls_ = 0;
};

/// Evaluator that fails on a specific index type (PQ), for failure paths.
class FailingEvaluator : public SyntheticEvaluator {
 public:
  EvalOutcome Evaluate(const TuningConfig& config) override {
    if (config.index_type == IndexType::kIvfPq) {
      EvalOutcome out;
      out.failed = true;
      out.fail_reason = "synthetic PQ failure";
      out.eval_seconds = 900.0;
      return out;
    }
    return SyntheticEvaluator::Evaluate(config);
  }
};

// ------------------------------------------------------------ tuning loop

TEST(TunerLoopTest, RecordsHistoryAndCumulativeTime) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 1;
  RandomTuner tuner(&space, &eval, opts);
  tuner.Run(10);
  ASSERT_EQ(tuner.history().size(), 10u);
  double prev = 0.0;
  for (const auto& obs : tuner.history()) {
    EXPECT_FALSE(obs.failed);
    EXPECT_GT(obs.qps, 0.0);
    EXPECT_GT(obs.cum_tuning_seconds, prev);
    prev = obs.cum_tuning_seconds;
  }
  EXPECT_EQ(eval.calls(), 10);
}

TEST(TunerLoopTest, FailedConfigsGetWorstValues) {
  ParamSpace space;
  FailingEvaluator eval;
  TunerOptions opts;
  opts.seed = 3;
  RandomTuner tuner(&space, &eval, opts);
  tuner.Run(60);
  double worst_ok = 1e18;
  bool saw_failure = false;
  for (const auto& obs : tuner.history()) {
    if (!obs.failed) worst_ok = std::min(worst_ok, obs.primary);
  }
  for (const auto& obs : tuner.history()) {
    if (obs.failed) {
      saw_failure = true;
      EXPECT_LE(obs.primary, worst_ok + 1e-9);
      EXPECT_EQ(obs.recall, 0.0);  // true outcome stays zeroed
    }
  }
  EXPECT_TRUE(saw_failure);  // LHS over 60 samples must hit IVF_PQ
}

TEST(TunerLoopTest, BestPrimaryHelpers) {
  std::vector<Observation> h(3);
  h[0].qps = h[0].primary = 100;
  h[0].recall = 0.95;
  h[0].iteration = 1;
  h[0].cum_tuning_seconds = 10;
  h[1].qps = h[1].primary = 500;
  h[1].recall = 0.80;
  h[1].iteration = 2;
  h[1].cum_tuning_seconds = 20;
  h[2].qps = h[2].primary = 300;
  h[2].recall = 0.92;
  h[2].iteration = 3;
  h[2].cum_tuning_seconds = 30;
  EXPECT_DOUBLE_EQ(BestPrimaryUnderRecallFloor(h, 0.9), 300.0);
  EXPECT_DOUBLE_EQ(BestPrimaryUnderRecallFloor(h, 0.99), 0.0);
  EXPECT_EQ(IterationsToReach(h, 0.9, 200.0), 3);
  EXPECT_EQ(IterationsToReach(h, 0.9, 1000.0), -1);
  EXPECT_DOUBLE_EQ(SecondsToReach(h, 0.9, 200.0), 30.0);
}

TEST(TunerLoopTest, CostEffectivenessObjective) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.primary = PrimaryObjective::kCostEffectiveness;
  opts.eta = 1.0;
  RandomTuner tuner(&space, &eval, opts);
  tuner.Run(5);
  for (const auto& obs : tuner.history()) {
    EXPECT_NEAR(obs.primary, obs.qps / obs.memory_gib, 1e-9);
  }
}

// ------------------------------------------------------------ baselines

TEST(RandomTunerTest, CoversIndexTypes) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 5;
  RandomTuner tuner(&space, &eval, opts);
  tuner.Run(40);
  std::set<int> types;
  for (const auto& obs : tuner.history()) {
    types.insert(static_cast<int>(obs.config.index_type));
  }
  EXPECT_GE(types.size(), 5u);
}

TEST(OpenTunerTest, ImprovesOverTime) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 7;
  OpenTunerLike tuner(&space, &eval, opts);
  tuner.Run(40);
  const auto& h = tuner.history();
  double best_early = 0.0, best_late = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    best_early = std::max(best_early, h[i].primary * h[i].feedback_recall);
  }
  for (const auto& obs : h) {
    best_late = std::max(best_late, obs.primary * obs.feedback_recall);
  }
  EXPECT_GE(best_late, best_early);
}

TEST(OtterTuneTest, InitThenModelPhase) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 9;
  opts.init_samples = 5;
  OtterTuneLike tuner(&space, &eval, opts);
  tuner.Run(12);
  EXPECT_EQ(tuner.history().size(), 12u);
}

TEST(QehviTest, FindsGoodTradeoffs) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 11;
  opts.init_samples = 6;
  QehviTuner tuner(&space, &eval, opts, /*candidate_pool=*/64);
  tuner.Run(25);
  EXPECT_GT(BestPrimaryUnderRecallFloor(tuner.history(), 0.85), 0.0);
}

// ------------------------------------------------------------ VDTuner

TEST(VdTunerTest, InitialSamplingCoversAllIndexTypes) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 13;
  VdTuner tuner(&space, &eval, opts);
  tuner.Run(kNumIndexTypes);
  std::set<int> types;
  for (const auto& obs : tuner.history()) {
    types.insert(static_cast<int>(obs.config.index_type));
    // Initial samples are the per-type defaults.
    EXPECT_EQ(obs.config.system.segment_max_size_mb, 512.0);
  }
  EXPECT_EQ(types.size(), static_cast<size_t>(kNumIndexTypes));
}

TEST(VdTunerTest, SuccessiveAbandonShrinksRotation) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 15;
  VdtunerOptions vd;
  vd.abandon_window = 5;
  vd.candidate_pool = 32;  // keep the test fast
  VdTuner tuner(&space, &eval, opts, vd);
  tuner.Run(45);
  EXPECT_LT(tuner.remaining().size(), static_cast<size_t>(kNumIndexTypes));
  // FLAT (slowest by construction) should be among the abandoned.
  const auto& rem = tuner.remaining();
  EXPECT_EQ(std::find(rem.begin(), rem.end(), IndexType::kFlat), rem.end());
}

TEST(VdTunerTest, RoundRobinAblationKeepsAllTypes) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 17;
  VdtunerOptions vd;
  vd.use_successive_abandon = false;
  vd.candidate_pool = 32;
  VdTuner tuner(&space, &eval, opts, vd);
  tuner.Run(30);
  EXPECT_EQ(tuner.remaining().size(), static_cast<size_t>(kNumIndexTypes));
}

TEST(VdTunerTest, ScoreLogTracksRemainingTypes) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 19;
  VdtunerOptions vd;
  vd.candidate_pool = 32;
  VdTuner tuner(&space, &eval, opts, vd);
  tuner.Run(20);
  ASSERT_FALSE(tuner.score_log().empty());
  for (const auto& scores : tuner.score_log()) {
    int finite = 0;
    for (double s : scores) finite += std::isfinite(s) ? 1 : 0;
    EXPECT_GE(finite, 1);
    for (double s : scores) {
      if (std::isfinite(s)) {
        EXPECT_GE(s, -1e-9);  // Eq. 6 is non-negative
      }
    }
  }
}

TEST(VdTunerTest, OutperformsRandomOnSyntheticSurface) {
  ParamSpace space;

  // Both tuners are stochastic, so a single-seed comparison measures luck
  // as much as method; the paper's claim is about expected performance.
  // Aggregate the best feasible objective across a few seeds — including
  // ones where random draws a lucky near-optimal sample early — and
  // require VDTuner to stay competitive on the total.
  double vd_total = 0.0;
  double rand_total = 0.0;
  for (const uint64_t seed : {5, 9, 21}) {
    TunerOptions opts;
    opts.seed = seed;

    SyntheticEvaluator eval_vd;
    VdtunerOptions vd;
    vd.candidate_pool = 64;
    VdTuner vdtuner(&space, &eval_vd, opts, vd);
    vdtuner.Run(60);
    vd_total += BestPrimaryUnderRecallFloor(vdtuner.history(), 0.9);

    SyntheticEvaluator eval_rand;
    RandomTuner random(&space, &eval_rand, opts);
    random.Run(60);
    rand_total += BestPrimaryUnderRecallFloor(random.history(), 0.9);
  }

  // VDTuner's model-guided search should be competitive with (typically
  // better than) space-filling random at the same budget.
  EXPECT_GE(vd_total, 0.85 * rand_total);
}

TEST(VdTunerTest, ConstraintModeRespectsFloor) {
  ParamSpace space;
  SyntheticEvaluator eval;
  TunerOptions opts;
  opts.seed = 23;
  opts.recall_floor = 0.9;
  VdtunerOptions vd;
  vd.candidate_pool = 64;
  VdTuner tuner(&space, &eval, opts, vd);
  tuner.Run(70);

  // Fig. 12's claim is comparative: modeling the constraint reaches a given
  // feasible performance level in no more samples than plain bi-objective
  // VDTuner, and is at least as good at the same budget.
  TunerOptions unopts = opts;
  unopts.recall_floor.reset();
  SyntheticEvaluator uneval;
  VdTuner unconstrained(&space, &uneval, unopts, vd);
  unconstrained.Run(70);

  const double target =
      0.55 * BestPrimaryUnderRecallFloor(unconstrained.history(), 0.9);
  const int con_iters = IterationsToReach(tuner.history(), 0.9, target);
  const int unc_iters = IterationsToReach(unconstrained.history(), 0.9, target);
  ASSERT_GT(con_iters, 0);
  ASSERT_GT(unc_iters, 0);
  EXPECT_LE(con_iters, unc_iters);
  EXPECT_GE(BestPrimaryUnderRecallFloor(tuner.history(), 0.9),
            0.9 * BestPrimaryUnderRecallFloor(unconstrained.history(), 0.9));
}

TEST(VdTunerTest, BootstrapSeedsSurrogate) {
  ParamSpace space;
  SyntheticEvaluator eval0;
  TunerOptions opts;
  opts.seed = 25;
  VdtunerOptions vd;
  vd.candidate_pool = 32;
  VdTuner first(&space, &eval0, opts, vd);
  first.Run(20);

  SyntheticEvaluator eval1;
  VdTuner second(&space, &eval1, opts, vd);
  second.Bootstrap(first.history());
  second.Run(10);
  EXPECT_EQ(second.history().size(), 10u);  // prior not counted as iterations
  EXPECT_GT(BestPrimaryUnderRecallFloor(second.history(), 0.85), 0.0);
}

TEST(VdTunerTest, DeterministicGivenSeed) {
  ParamSpace space;
  TunerOptions opts;
  opts.seed = 27;
  VdtunerOptions vd;
  vd.candidate_pool = 24;

  SyntheticEvaluator e1, e2;
  VdTuner a(&space, &e1, opts, vd), b(&space, &e2, opts, vd);
  a.Run(20);
  b.Run(20);
  ASSERT_EQ(a.history().size(), b.history().size());
  for (size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(a.history()[i].config.index_type,
              b.history()[i].config.index_type);
    EXPECT_DOUBLE_EQ(a.history()[i].qps, b.history()[i].qps);
  }
}

// ------------------------------------------------------------ SHAP

TEST(ShapTest, AttributionsSumToDelta) {
  ParamSpace space;
  // Metric: linear in two coordinates -> exact Shapley values.
  MetricFn metric = [](const std::vector<double>& x) {
    return 3.0 * x[kDimSegmentMaxSize] + 1.0 * x[kDimCacheRatio];
  };
  std::vector<double> baseline(space.dims(), 0.0);
  std::vector<double> target(space.dims(), 0.0);
  target[kDimSegmentMaxSize] = 1.0;
  target[kDimCacheRatio] = 1.0;
  const auto attr = ShapleyAttribution(space, metric, baseline, target, {});
  double sum = 0.0;
  for (const auto& a : attr) sum += a.contribution;
  EXPECT_NEAR(sum, 4.0, 1e-9);
  EXPECT_NEAR(attr[kDimSegmentMaxSize].contribution, 3.0, 1e-9);
  EXPECT_NEAR(attr[kDimCacheRatio].contribution, 1.0, 1e-9);
  EXPECT_EQ(attr[kDimSegmentMaxSize].param_name, "segment_maxSize");
}

TEST(ShapTest, SurrogateMetricApproximatesData) {
  Rng rng(29);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 24; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    ys.push_back(5.0 * x[0] + x[1]);
    xs.push_back(std::move(x));
  }
  MetricFn f = SurrogateMetric(xs, ys, 1);
  EXPECT_NEAR(f({0.5, 0.5}), 3.0, 0.5);
}

}  // namespace
}  // namespace vdt
