// Tests for src/workload: dataset generators, ground truth/recall, the cost
// model's monotonicities, the replay engine in both modes, and the churn
// (mixed insert/delete/search) timeline generator + replay.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tests/test_util.h"
#include "workload/churn.h"
#include "workload/replay.h"

namespace vdt {
namespace {

TEST(DatasetsTest, SpecsAreLookupable) {
  for (int p = 0; p < kNumDatasetProfiles; ++p) {
    const auto& spec = GetDatasetSpec(static_cast<DatasetProfile>(p));
    EXPECT_EQ(spec.profile, static_cast<DatasetProfile>(p));
    EXPECT_GT(spec.PaperMb(), 0.0);
    EXPECT_EQ(FindDatasetSpec(spec.name), &spec);
  }
  EXPECT_EQ(FindDatasetSpec("nope"), nullptr);
}

TEST(DatasetsTest, GeneratorIsDeterministicAndNormalized) {
  auto a = GenerateDataset(DatasetProfile::kGlove, 100, 16, 5);
  auto b = GenerateDataset(DatasetProfile::kGlove, 100, 16, 5);
  ASSERT_EQ(a.rows(), 100u);
  for (size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(Norm(a.Row(i), 16), 1.0f, 1e-4f);
    for (size_t d = 0; d < 16; ++d) EXPECT_EQ(a.At(i, d), b.At(i, d));
  }
  auto c = GenerateDataset(DatasetProfile::kGlove, 100, 16, 6);
  bool differs = false;
  for (size_t d = 0; d < 16 && !differs; ++d) {
    differs = a.At(0, d) != c.At(0, d);
  }
  EXPECT_TRUE(differs);
}

TEST(DatasetsTest, ProfilesDifferInClusterStructure) {
  // GloVe (clustered) should concentrate distances vs Keyword-match
  // (near-unstructured): mean nearest-neighbor distance is smaller.
  const size_t n = 600, dim = 24;
  auto glove = GenerateDataset(DatasetProfile::kGlove, n, dim, 7);
  auto keyword = GenerateDataset(DatasetProfile::kKeywordMatch, n, dim, 7);
  auto mean_nn = [&](const FloatMatrix& data) {
    double sum = 0.0;
    for (size_t i = 0; i < 50; ++i) {
      auto hits = BruteForceSearch(data, Metric::kAngular, data.Row(i), 2,
                                   nullptr);
      sum += hits[1].distance;  // hits[0] is the point itself
    }
    return sum / 50.0;
  };
  EXPECT_LT(mean_nn(glove), mean_nn(keyword));
}

TEST(DatasetsTest, GeoRadiusHasLowIntrinsicDimension) {
  // Points on a 3-d manifold: nearest neighbors are much closer than random
  // pairs, even in a 64-d ambient space.
  auto geo = GenerateDataset(DatasetProfile::kGeoRadius, 500, 64, 9);
  double nn_sum = 0.0, rand_sum = 0.0;
  for (size_t i = 0; i < 40; ++i) {
    auto hits = BruteForceSearch(geo, Metric::kAngular, geo.Row(i), 2, nullptr);
    nn_sum += hits[1].distance;
    rand_sum += Distance(Metric::kAngular, geo.Row(i), geo.Row(250 + i), 64);
  }
  EXPECT_LT(nn_sum, 0.4 * rand_sum);
}

TEST(WorkloadTest, GroundTruthMatchesBruteForce) {
  auto data = GenerateDataset(DatasetProfile::kGlove, 400, 16, 11);
  auto queries = GenerateQueries(DatasetProfile::kGlove, 10, 16, 11);
  auto truth = BuildGroundTruth(data, Metric::kAngular, queries, 5, 2);
  ASSERT_EQ(truth.size(), 10u);
  for (size_t q = 0; q < queries.rows(); ++q) {
    auto expected =
        BruteForceSearch(data, Metric::kAngular, queries.Row(q), 5, nullptr);
    ASSERT_EQ(truth[q].size(), 5u);
    for (size_t i = 0; i < 5; ++i) EXPECT_EQ(truth[q][i], expected[i].id);
  }
}

TEST(WorkloadTest, RecallAtKBounds) {
  std::vector<Neighbor> result = {{1, 0.1f}, {2, 0.2f}, {9, 0.3f}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(result, {7, 8}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(result, {}), 1.0);
}

TEST(WorkloadTest, MakeWorkloadAssemblesEverything) {
  auto data = GenerateDataset(DatasetProfile::kGlove, 300, 16, 13);
  Workload w = MakeWorkload(DatasetProfile::kGlove, data, 8, 5, 13);
  EXPECT_EQ(w.queries.rows(), 8u);
  EXPECT_EQ(w.ground_truth.size(), 8u);
  EXPECT_EQ(w.k, 5u);
  EXPECT_EQ(w.concurrency, 10);
}

// ------------------------------------------------------------ cost model

CollectionStats FakeStats() {
  CollectionStats s;
  s.total_rows = 4000;
  s.num_sealed_segments = 8;
  s.data_mb_paper_scale = 472.0;
  return s;
}

TEST(CostModelTest, MoreWorkMeansLowerQps) {
  CostModelParams p;
  SystemConfig sys;
  WorkCounters light, heavy;
  light.full_distance_evals = 1000;
  heavy.full_distance_evals = 100000;
  const double q_light = ComputeQps(p, light, 100, 48, FakeStats(), sys, 10);
  const double q_heavy = ComputeQps(p, heavy, 100, 48, FakeStats(), sys, 10);
  EXPECT_GT(q_light, q_heavy);
}

TEST(CostModelTest, GracefulTimeStallsThroughput) {
  CostModelParams p;
  WorkCounters w;
  w.full_distance_evals = 10000;
  SystemConfig fast_sys, slow_sys;
  fast_sys.graceful_time_ms = 5000.0;  // tolerant: no stall
  slow_sys.graceful_time_ms = 0.0;     // strict: stalls behind ingest
  const double q_fast = ComputeQps(p, w, 100, 48, FakeStats(), fast_sys, 10);
  const double q_slow = ComputeQps(p, w, 100, 48, FakeStats(), slow_sys, 10);
  EXPECT_GT(q_fast, 1.5 * q_slow);
}

TEST(CostModelTest, ConcurrencyCapsAndOversubscription) {
  CostModelParams p;
  WorkCounters w;
  w.full_distance_evals = 10000;
  SystemConfig narrow, wide, oversub;
  narrow.max_read_concurrency = 2;
  wide.max_read_concurrency = 32;
  oversub.max_read_concurrency = 256;
  const double q_narrow = ComputeQps(p, w, 100, 48, FakeStats(), narrow, 10);
  const double q_wide = ComputeQps(p, w, 100, 48, FakeStats(), wide, 10);
  const double q_over = ComputeQps(p, w, 100, 48, FakeStats(), oversub, 10);
  EXPECT_GT(q_wide, q_narrow);    // below the workload's 10 hurts
  EXPECT_GT(q_wide, q_over);      // way past the cores hurts too
}

TEST(CostModelTest, CacheRatioHelps) {
  CostModelParams p;
  WorkCounters w;
  w.full_distance_evals = 200000;
  SystemConfig cold, warm;
  cold.cache_ratio = 0.05;
  warm.cache_ratio = 0.9;
  EXPECT_GT(ComputeQps(p, w, 100, 48, FakeStats(), warm, 10),
            ComputeQps(p, w, 100, 48, FakeStats(), cold, 10));
}

TEST(CostModelTest, SegmentOverheadCounts) {
  CostModelParams p;
  WorkCounters w;
  w.full_distance_evals = 1000;
  CollectionStats few = FakeStats(), many = FakeStats();
  few.num_sealed_segments = 2;
  many.num_sealed_segments = 60;
  SystemConfig sys;
  EXPECT_GT(ComputeQps(p, w, 100, 48, few, sys, 10),
            ComputeQps(p, w, 100, 48, many, sys, 10));
}

TEST(CostModelTest, BuildTimeOrdering) {
  CostModelParams p;
  IndexParams params;
  const double flat =
      AnalyticBuildSeconds(p, IndexType::kFlat, params, 1e6, 100);
  const double ivf =
      AnalyticBuildSeconds(p, IndexType::kIvfFlat, params, 1e6, 100);
  const double hnsw =
      AnalyticBuildSeconds(p, IndexType::kHnsw, params, 1e6, 100);
  EXPECT_LT(flat, ivf);
  EXPECT_LT(flat, hnsw);
  // Bigger efConstruction -> longer build.
  IndexParams big = params;
  big.ef_construction = 512;
  EXPECT_GT(AnalyticBuildSeconds(p, IndexType::kHnsw, big, 1e6, 100), hnsw);
  EXPECT_GT(AnalyticLoadSeconds(p, 1e6, 100), 0.0);
}

// ------------------------------------------------------------ replay

TEST(ReplayTest, CostModelModeIsDeterministic) {
  auto data = GenerateDataset(DatasetProfile::kGlove, 800, 16, 17);
  Workload w = MakeWorkload(DatasetProfile::kGlove, data, 12, 5, 17);

  CollectionOptions copts;
  copts.metric = Metric::kAngular;
  copts.scale.dataset_mb = 472.0;
  copts.scale.actual_rows = data.rows();
  copts.index.type = IndexType::kIvfFlat;
  copts.index.params.nlist = 16;
  copts.index.params.nprobe = 4;
  copts.system.build_index_threshold = 32;

  auto run = [&] {
    Collection coll(copts);
    EXPECT_TRUE(coll.Insert(data).ok());
    EXPECT_TRUE(coll.Flush().ok());
    return ReplayWorkload(coll, w, {});
  };
  const ReplayResult a = run();
  const ReplayResult b = run();
  EXPECT_FALSE(a.failed) << a.fail_reason;
  EXPECT_DOUBLE_EQ(a.qps, b.qps);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.memory_gib, b.memory_gib);
  EXPECT_GT(a.qps, 0.0);
  EXPECT_GT(a.recall, 0.3);
  EXPECT_GT(a.memory_gib, 0.0);
}

TEST(ReplayTest, MeasuredModeProducesPositiveQps) {
  auto data = GenerateDataset(DatasetProfile::kGlove, 500, 16, 19);
  Workload w = MakeWorkload(DatasetProfile::kGlove, data, 10, 5, 19, 2);

  CollectionOptions copts;
  copts.metric = Metric::kAngular;
  copts.scale.dataset_mb = 472.0;
  copts.scale.actual_rows = data.rows();
  copts.index.type = IndexType::kFlat;
  Collection coll(copts);
  ASSERT_TRUE(coll.Insert(data).ok());
  ASSERT_TRUE(coll.Flush().ok());

  ReplayOptions opts;
  opts.mode = ReplayMode::kMeasured;
  const ReplayResult r = ReplayWorkload(coll, w, opts);
  EXPECT_FALSE(r.failed);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_GT(r.recall, 0.99);  // FLAT is exact
}

TEST(ReplayTest, SpeedRecallConflict) {
  // The paper's core tension: fewer probes -> faster but lower recall.
  auto data = GenerateDataset(DatasetProfile::kGlove, 1500, 24, 23);
  Workload w = MakeWorkload(DatasetProfile::kGlove, data, 16, 10, 23);

  CollectionOptions copts;
  copts.metric = Metric::kAngular;
  copts.scale.dataset_mb = 472.0;
  copts.scale.actual_rows = data.rows();
  copts.index.type = IndexType::kIvfFlat;
  copts.index.params.nlist = 64;
  copts.system.build_index_threshold = 32;

  copts.index.params.nprobe = 1;
  Collection fast(copts);
  ASSERT_TRUE(fast.Insert(data).ok());
  ASSERT_TRUE(fast.Flush().ok());
  const ReplayResult r_fast = ReplayWorkload(fast, w, {});

  copts.index.params.nprobe = 64;
  Collection slow(copts);
  ASSERT_TRUE(slow.Insert(data).ok());
  ASSERT_TRUE(slow.Flush().ok());
  const ReplayResult r_slow = ReplayWorkload(slow, w, {});

  EXPECT_GT(r_fast.qps, r_slow.qps);
  EXPECT_LT(r_fast.recall, r_slow.recall);
  EXPECT_GT(r_slow.recall, 0.95);
}

TEST(ReplayTest, TimeoutMarksFailure) {
  auto data = GenerateDataset(DatasetProfile::kGlove, 400, 16, 29);
  Workload w = MakeWorkload(DatasetProfile::kGlove, data, 8, 5, 29);
  CollectionOptions copts;
  copts.metric = Metric::kAngular;
  copts.scale.dataset_mb = 472.0;
  copts.scale.actual_rows = data.rows();
  copts.index.type = IndexType::kFlat;
  Collection coll(copts);
  ASSERT_TRUE(coll.Insert(data).ok());
  ASSERT_TRUE(coll.Flush().ok());

  ReplayOptions opts;
  opts.cost.min_qps = 1e12;  // impossible floor -> always timeout
  const ReplayResult r = ReplayWorkload(coll, w, opts);
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.fail_reason.empty());
}

// ------------------------------------------------------------ churn

TEST(ChurnWorkloadTest, GeneratorIsDeterministicAndTruthTracksLiveSet) {
  const auto data = GenerateDataset(DatasetProfile::kGlove, 800, 16, 81);
  ChurnSpec spec;
  spec.num_queries = 8;
  spec.k = 6;
  spec.rounds = 3;
  spec.delete_fraction = 0.2;
  spec.searches_per_round = 3;

  const auto a = MakeChurnWorkload(DatasetProfile::kGlove, data, spec, 82);
  const auto b = MakeChurnWorkload(DatasetProfile::kGlove, data, spec, 82);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind) << i;
    EXPECT_EQ(a.ops[i].delete_ids, b.ops[i].delete_ids) << i;
    EXPECT_EQ(a.ops[i].truth, b.ops[i].truth) << i;
  }
  EXPECT_GT(a.num_searches(), 0u);
  EXPECT_GT(a.num_deletes(), 0u);

  // Walk the timeline: every search op's truth must be exactly the rows
  // live at that point (subset check + size check).
  std::set<int64_t> live;
  for (const ChurnOp& op : a.ops) {
    switch (op.kind) {
      case OpKind::kInsert:
        for (size_t r = op.insert_begin; r < op.insert_end; ++r) {
          live.insert(static_cast<int64_t>(r));
        }
        break;
      case OpKind::kDelete:
        for (const int64_t id : op.delete_ids) {
          EXPECT_EQ(live.erase(id), 1u) << "delete of non-live id " << id;
        }
        break;
      case OpKind::kSearch:
        EXPECT_EQ(op.truth.size(), std::min<size_t>(spec.k, live.size()));
        for (const int64_t id : op.truth) {
          EXPECT_TRUE(live.count(id) > 0)
              << "truth contains non-live id " << id;
        }
        break;
    }
  }
  // The full base matrix ends up inserted.
  size_t inserted = 0;
  for (const ChurnOp& op : a.ops) {
    if (op.kind == OpKind::kInsert) inserted += op.insert_end - op.insert_begin;
  }
  EXPECT_EQ(inserted, data.rows());
}

TEST(ChurnReplayTest, FlatReplayIsExactAndCountsMutations) {
  const auto data = GenerateDataset(DatasetProfile::kGlove, 900, 16, 83);
  ChurnSpec spec;
  spec.num_queries = 8;
  spec.k = 8;
  spec.rounds = 3;
  spec.delete_fraction = 0.25;
  spec.searches_per_round = 4;
  const auto churn = MakeChurnWorkload(DatasetProfile::kGlove, data, spec, 84);

  CollectionOptions copts;
  copts.metric = Metric::kAngular;
  copts.scale.dataset_mb = 100.0;
  copts.scale.actual_rows = data.rows();
  copts.index.type = IndexType::kFlat;
  copts.system.segment_max_size_mb = 100.0;
  copts.system.seal_proportion = 0.1;
  copts.system.insert_buf_size_mb = 2.5;
  copts.system.build_index_threshold = 32;
  copts.system.compaction_deleted_ratio = 0.15;
  Collection coll(copts);

  ReplayOptions ropts;
  const ChurnReplayResult result = ReplayChurn(&coll, churn, ropts);
  ASSERT_FALSE(result.failed) << result.fail_reason;
  // FLAT search over the live set is exact, and the timeline's ground truth
  // is exact over the same live set.
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_EQ(result.searches, churn.num_searches());
  EXPECT_EQ(result.rows_deleted, churn.num_deletes());
  EXPECT_GT(result.compactions, 0u);  // 25%/round deletes beat the 15% knob
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GT(result.memory_gib, 0.0);

  // The final collection state matches the timeline's final live set.
  std::set<int64_t> live;
  for (const ChurnOp& op : churn.ops) {
    if (op.kind == OpKind::kInsert) {
      for (size_t r = op.insert_begin; r < op.insert_end; ++r) {
        live.insert(static_cast<int64_t>(r));
      }
    } else if (op.kind == OpKind::kDelete) {
      for (const int64_t id : op.delete_ids) live.erase(id);
    }
  }
  EXPECT_EQ(coll.Stats().live_rows, live.size());
}

TEST(ChurnReplayTest, RejectsTimelinesWithoutSearches) {
  const auto data = GenerateDataset(DatasetProfile::kGlove, 100, 8, 85);
  ChurnWorkload churn;
  churn.base = &data;
  CollectionOptions copts;
  copts.scale.actual_rows = data.rows();
  Collection coll(copts);
  const ChurnReplayResult result = ReplayChurn(&coll, churn, ReplayOptions{});
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.fail_reason.empty());
}

}  // namespace
}  // namespace vdt
