// Tests for the online-tuning extension (paper §VII future work) and the
// simulated-annealing baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "tuner/annealing_tuner.h"
#include "tuner/online_tuner.h"

namespace vdt {
namespace {

/// Evaluator with a switchable "workload shape": phase 0 favors high-nprobe
/// IVF configs, phase 1 shifts the optimum and degrades phase-0 champions.
class DriftingEvaluator : public Evaluator {
 public:
  void set_phase(int phase) { phase_ = phase; }
  int calls() const { return calls_; }

  EvalOutcome Evaluate(const TuningConfig& config) override {
    ++calls_;
    EvalOutcome out;
    const double effort = config.index.nprobe / 256.0;
    if (phase_ == 0) {
      out.qps = 2000.0 * (1.1 - effort);
      out.recall = std::min(1.0, 0.6 + 0.45 * std::sqrt(effort));
    } else {
      // Drift: everything is ~3x slower and recall needs far more effort.
      out.qps = 700.0 * (1.1 - effort);
      out.recall = std::min(1.0, 0.3 + 0.75 * std::sqrt(effort));
    }
    out.memory_gib = 3.0;
    out.eval_seconds = 50.0;
    return out;
  }

 private:
  int phase_ = 0;
  int calls_ = 0;
};

OnlineTunerOptions SmallOptions() {
  OnlineTunerOptions opts;
  opts.retune_iters = 15;
  opts.tuner.seed = 5;
  opts.vdtuner.candidate_pool = 24;
  opts.vdtuner.abandon_window = 4;
  return opts;
}

TEST(OnlineTunerTest, InitializePromotesIncumbent) {
  ParamSpace space;
  DriftingEvaluator eval;
  OnlineVdTuner online(&space, &eval, SmallOptions());
  online.Initialize(15);
  EXPECT_GT(online.incumbent_qps(), 0.0);
  EXPECT_FALSE(online.knowledge_base().empty());
}

TEST(OnlineTunerTest, SteadyWhileWorkloadStable) {
  ParamSpace space;
  DriftingEvaluator eval;
  OnlineVdTuner online(&space, &eval, SmallOptions());
  online.Initialize(15);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(online.Tick(), OnlineEvent::kSteady);
  }
  EXPECT_EQ(online.retune_count(), 0);
}

TEST(OnlineTunerTest, DriftTriggersRetuneAndRecovers) {
  ParamSpace space;
  DriftingEvaluator eval;
  OnlineVdTuner online(&space, &eval, SmallOptions());
  online.Initialize(15);
  const double before = online.incumbent_qps();

  eval.set_phase(1);  // the workload shifts: incumbent degrades ~3x
  const OnlineEvent event = online.Tick();
  EXPECT_NE(event, OnlineEvent::kSteady);
  EXPECT_GE(online.retune_count(), 1);
  // The re-tuned incumbent reflects phase-1 reality (slower than phase 0).
  EXPECT_LT(online.incumbent_qps(), before);
  EXPECT_GT(online.incumbent_qps(), 0.0);

  // Once adapted, the loop settles again.
  EXPECT_EQ(online.Tick(), OnlineEvent::kSteady);
}

TEST(OnlineTunerTest, KnowledgeBaseGrowsAcrossSessions) {
  ParamSpace space;
  DriftingEvaluator eval;
  OnlineVdTuner online(&space, &eval, SmallOptions());
  online.Initialize(10);
  const size_t after_init = online.knowledge_base().size();
  eval.set_phase(1);
  online.Tick();
  EXPECT_GT(online.knowledge_base().size(), after_init);
}

TEST(OnlineTunerTest, RespectsRecallFloor) {
  ParamSpace space;
  DriftingEvaluator eval;
  OnlineTunerOptions opts = SmallOptions();
  opts.tuner.recall_floor = 0.9;
  opts.vdtuner.candidate_pool = 48;
  OnlineVdTuner online(&space, &eval, opts);
  online.Initialize(40);
  EXPECT_GE(online.incumbent_recall(), 0.9);
}

// ------------------------------------------------------------- annealing

TEST(AnnealingTunerTest, RunsAndImproves) {
  ParamSpace space;
  DriftingEvaluator eval;
  TunerOptions topts;
  topts.seed = 9;
  AnnealingTuner tuner(&space, &eval, topts);
  tuner.Run(40);
  ASSERT_EQ(tuner.history().size(), 40u);
  double best_early = 0.0, best_all = 0.0;
  for (size_t i = 0; i < tuner.history().size(); ++i) {
    const auto& o = tuner.history()[i];
    const double score = o.primary * o.feedback_recall;
    if (i < 10) best_early = std::max(best_early, score);
    best_all = std::max(best_all, score);
  }
  EXPECT_GE(best_all, best_early);
}

TEST(AnnealingTunerTest, DeterministicGivenSeed) {
  auto run = [] {
    ParamSpace space;
    DriftingEvaluator eval;
    TunerOptions topts;
    topts.seed = 11;
    AnnealingTuner tuner(&space, &eval, topts);
    tuner.Run(15);
    std::vector<double> qps;
    for (const auto& o : tuner.history()) qps.push_back(o.qps);
    return qps;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vdt
