// Shard scatter/gather tests: MergeTopK determinism, cross-shard-count
// result parity against the single-chain baseline, the lifecycle timeline
// (flush / delete / compact) under sharding, per-request knob-override
// parity, scatter/gather work accounting, and the num_shards tuning
// dimension (ParamSpace codec + knowledge-base persistence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "index/topk.h"
#include "tests/test_util.h"
#include "tuner/knowledge_base.h"
#include "vdms/vdms.h"

namespace vdt {
namespace {

using testing_util::ClusteredMatrix;
using testing_util::RandomMatrix;

// ------------------------------------------------------------ MergeTopK

TEST(MergeTopKTest, OrdersByDistanceThenId) {
  std::vector<std::vector<Neighbor>> lists = {
      {{4, 0.5f}, {9, 0.25f}},
      {{2, 0.25f}, {7, 0.75f}},
  };
  const auto merged = MergeTopK(std::move(lists), 3);
  ASSERT_EQ(merged.size(), 3u);
  // Equal distances break toward the smaller id.
  EXPECT_EQ(merged[0].id, 2);
  EXPECT_EQ(merged[1].id, 9);
  EXPECT_EQ(merged[2].id, 4);
}

TEST(MergeTopKTest, DuplicateIdsKeepBestDistance) {
  std::vector<std::vector<Neighbor>> lists = {
      {{1, 0.9f}, {2, 0.3f}},
      {{1, 0.1f}, {3, 0.5f}},
  };
  const auto merged = MergeTopK(std::move(lists), 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 1);
  EXPECT_FLOAT_EQ(merged[0].distance, 0.1f);
}

TEST(MergeTopKTest, EmptyListsAndShortSupply) {
  std::vector<std::vector<Neighbor>> lists = {{}, {{5, 0.4f}}, {}};
  const auto merged = MergeTopK(std::move(lists), 8);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].id, 5);

  EXPECT_TRUE(MergeTopK({}, 4).empty());
  EXPECT_TRUE(MergeTopK({{}, {}}, 4).empty());
}

TEST(MergeTopKTest, IdentityOnSingleSortedList) {
  // The S=1 gather path: one already-sorted unique-id list must pass
  // through bit-for-bit (this is what keeps single-shard collections
  // identical to the pre-sharding engine).
  std::vector<Neighbor> sorted = {{3, 0.1f}, {1, 0.2f}, {2, 0.2f}, {9, 0.7f}};
  std::vector<std::vector<Neighbor>> lists = {sorted};
  const auto merged = MergeTopK(std::move(lists), sorted.size());
  ASSERT_EQ(merged.size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(merged[i].id, sorted[i].id);
    EXPECT_FLOAT_EQ(merged[i].distance, sorted[i].distance);
  }
}

TEST(MergeTopKTest, InvariantUnderListSplit) {
  // Distributing one candidate set across any number of lists must not
  // change the merged top-k (the determinism contract the scatter relies
  // on: shard layout is invisible to the caller).
  Rng rng(71);
  std::vector<Neighbor> all;
  for (int64_t id = 0; id < 64; ++id) {
    all.push_back({id, static_cast<float>(rng.Uniform())});
  }
  const auto whole = MergeTopK({all}, 10);
  for (const size_t pieces : {2u, 3u, 7u}) {
    std::vector<std::vector<Neighbor>> lists(pieces);
    for (size_t i = 0; i < all.size(); ++i) {
      lists[i % pieces].push_back(all[i]);
    }
    const auto merged = MergeTopK(std::move(lists), 10);
    ASSERT_EQ(merged.size(), whole.size()) << pieces << " pieces";
    for (size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(merged[i].id, whole[i].id) << pieces << " pieces, rank " << i;
      EXPECT_FLOAT_EQ(merged[i].distance, whole[i].distance);
    }
  }
}

// ------------------------------------------------------ cross-shard parity

CollectionOptions ShardedOptions(size_t actual_rows, int num_shards,
                                 IndexType type = IndexType::kFlat) {
  CollectionOptions opts;
  opts.metric = Metric::kAngular;
  opts.scale.dataset_mb = 100.0;
  opts.scale.actual_rows = actual_rows;
  opts.index.type = type;
  opts.index.params.nlist = 8;
  opts.index.params.nprobe = 8;  // nprobe == nlist: IVF_FLAT scans exactly
  opts.system.build_index_threshold = 32;
  opts.system.segment_max_size_mb = 40.0;  // several segments per shard
  opts.system.seal_proportion = 0.1;
  opts.system.insert_buf_size_mb = 2.0;
  opts.system.num_shards = num_shards;
  return opts;
}

/// Builds a collection over `data`, flushed, at the given shard count
/// (Collection is not movable, so heap-allocate).
std::unique_ptr<Collection> MakeSharded(const FloatMatrix& data,
                                        int num_shards,
                                        IndexType type = IndexType::kFlat) {
  auto coll = std::make_unique<Collection>(
      ShardedOptions(data.rows(), num_shards, type));
  EXPECT_TRUE(coll->Insert(data).ok());
  EXPECT_TRUE(coll->Flush().ok());
  return coll;
}

void ExpectSameResults(const std::vector<Neighbor>& a,
                       const std::vector<Neighbor>& b,
                       const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << context << ", rank " << i;
    EXPECT_FLOAT_EQ(a[i].distance, b[i].distance) << context << ", rank " << i;
  }
}

TEST(ShardParityTest, ExactIndexesMatchSingleChainExactly) {
  // FLAT and exhaustive IVF_FLAT compute every query-row distance from the
  // same stored floats regardless of which shard a row hashed to, and the
  // (distance, id) gather order is layout-independent — so any shard count
  // must reproduce the S=1 results exactly.
  const size_t n = 1500;
  const size_t k = 10;
  FloatMatrix data = ClusteredMatrix(n, 24, 10, 0.25, 91);
  FloatMatrix queries = RandomMatrix(20, 24, 92);
  for (const IndexType type : {IndexType::kFlat, IndexType::kIvfFlat}) {
    auto baseline = MakeSharded(data, 1, type);
    EXPECT_EQ(baseline->num_shards(), 1u);
    for (const int shards : {2, 4, 7}) {
      auto sharded = MakeSharded(data, shards, type);
      EXPECT_EQ(sharded->num_shards(), static_cast<size_t>(shards));
      for (size_t q = 0; q < queries.rows(); ++q) {
        ExpectSameResults(
            baseline->Search(queries.Row(q), k, nullptr),
            sharded->Search(queries.Row(q), k, nullptr),
            "type=" + std::to_string(static_cast<int>(type)) +
                " shards=" + std::to_string(shards) +
                " q=" + std::to_string(q));
      }
    }
  }
}

/// Mean recall@k of `coll` against per-query ground-truth id sets.
double MeanRecall(const Collection& coll, const FloatMatrix& queries,
                  size_t k, const std::vector<std::set<int64_t>>& truth) {
  double hits = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto result = coll.Search(queries.Row(q), k, nullptr);
    for (const Neighbor& n : result) {
      hits += truth[q].count(n.id) ? 1.0 : 0.0;
    }
  }
  return hits / (static_cast<double>(queries.rows() * k));
}

TEST(ShardParityTest, ApproximateIndexesKeepRecallAcrossShardCounts) {
  // SQ8 fits quantizer ranges per segment and HNSW/PQ build per-segment
  // structures, so exact result parity across segment layouts is not a
  // property these indexes have even without sharding. The contract is
  // recall parity: resharding must not degrade answer quality.
  const size_t n = 1500;
  const size_t k = 10;
  FloatMatrix data = ClusteredMatrix(n, 24, 10, 0.25, 93);
  FloatMatrix queries = RandomMatrix(16, 24, 94);

  auto exact = MakeSharded(data, 1, IndexType::kFlat);
  std::vector<std::set<int64_t>> truth(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (const Neighbor& n : exact->Search(queries.Row(q), k, nullptr)) {
      truth[q].insert(n.id);
    }
  }

  for (const IndexType type :
       {IndexType::kIvfSq8, IndexType::kHnsw, IndexType::kIvfPq}) {
    auto single = MakeSharded(data, 1, type);
    const double base_recall = MeanRecall(*single, queries, k, truth);
    for (const int shards : {4}) {
      auto sharded = MakeSharded(data, shards, type);
      const double shard_recall = MeanRecall(*sharded, queries, k, truth);
      EXPECT_GE(shard_recall, base_recall - 0.15)
          << "type=" << static_cast<int>(type) << " shards=" << shards;
    }
  }
}

// ------------------------------------------------------ lifecycle parity

TEST(ShardParityTest, LifecycleTimelineMatchesSingleChain) {
  // Drive identical mutation timelines (insert -> flush -> insert -> delete
  // -> compact -> insert) through S=1 and S=5 collections; the exact-index
  // search results must stay identical at every step, and the per-shard
  // stats must keep summing to the collection totals.
  const size_t dim = 16;
  FloatMatrix wave1 = RandomMatrix(600, dim, 95);
  FloatMatrix wave2 = RandomMatrix(300, dim, 96);
  FloatMatrix wave3 = RandomMatrix(150, dim, 97);
  FloatMatrix queries = RandomMatrix(12, dim, 98);
  std::vector<int64_t> victims;
  for (int64_t id = 40; id < 640; id += 3) victims.push_back(id);

  auto opts1 = ShardedOptions(1050, 1);
  auto opts5 = ShardedOptions(1050, 5);
  opts1.system.compaction_deleted_ratio = 0.05;
  opts5.system.compaction_deleted_ratio = 0.05;
  Collection single(opts1);
  Collection sharded(opts5);

  const auto check_step = [&](const std::string& step) {
    for (size_t q = 0; q < queries.rows(); ++q) {
      ExpectSameResults(single.Search(queries.Row(q), 10, nullptr),
                        sharded.Search(queries.Row(q), 10, nullptr),
                        step + " q=" + std::to_string(q));
    }
    const CollectionStats stats = sharded.Stats();
    EXPECT_EQ(stats.num_shards, 5u) << step;
    ASSERT_EQ(stats.shards.size(), 5u) << step;
    size_t stored = 0, live = 0, tombstoned = 0, sealed = 0;
    for (const ShardStats& s : stats.shards) {
      EXPECT_EQ(s.stored_rows, s.live_rows + s.tombstoned_rows) << step;
      stored += s.stored_rows;
      live += s.live_rows;
      tombstoned += s.tombstoned_rows;
      sealed += s.sealed_segments;
    }
    EXPECT_EQ(stored, stats.stored_rows) << step;
    EXPECT_EQ(live, stats.live_rows) << step;
    EXPECT_EQ(tombstoned, stats.tombstoned_rows) << step;
    EXPECT_EQ(sealed, stats.num_sealed_segments) << step;
  };

  for (Collection* c : {&single, &sharded}) {
    ASSERT_TRUE(c->Insert(wave1).ok());
  }
  check_step("after wave1");
  for (Collection* c : {&single, &sharded}) {
    ASSERT_TRUE(c->Flush().ok());
    ASSERT_TRUE(c->Insert(wave2).ok());
  }
  check_step("after flush + wave2");

  size_t deleted1 = 0, deleted5 = 0;
  ASSERT_TRUE(single.Delete(victims, &deleted1).ok());
  ASSERT_TRUE(sharded.Delete(victims, &deleted5).ok());
  EXPECT_EQ(deleted1, deleted5);
  EXPECT_GT(deleted1, 0u);
  check_step("after delete");

  for (Collection* c : {&single, &sharded}) {
    ASSERT_TRUE(c->Compact().ok());
    ASSERT_TRUE(c->Insert(wave3).ok());
    ASSERT_TRUE(c->Flush().ok());
  }
  check_step("after compact + wave3 + flush");

  // Deleted ids never surface from either layout.
  const std::set<int64_t> dead(victims.begin(), victims.end());
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (const Neighbor& n : sharded.Search(queries.Row(q), 25, nullptr)) {
      EXPECT_EQ(dead.count(n.id), 0u) << "q=" << q;
    }
  }
}

TEST(ShardParityTest, HashRoutingSpreadsRowsAcrossShards) {
  FloatMatrix data = RandomMatrix(2000, 16, 99);
  auto coll = MakeSharded(data, 8);
  const CollectionStats stats = coll->Stats();
  ASSERT_EQ(stats.shards.size(), 8u);
  // Every shard should own a meaningful share (SplitMix64 spreads 2000
  // sequential ids across 8 shards; expectation is 250 per shard).
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    EXPECT_GT(stats.shards[s].stored_rows, 125u) << "shard " << s;
    EXPECT_LT(stats.shards[s].stored_rows, 500u) << "shard " << s;
  }
}

// ------------------------------------------------- knob overrides + work

TEST(ShardParityTest, RequestKnobOverrideMatchesCollectionKnobsOnShards) {
  const size_t k = 10;
  FloatMatrix data = ClusteredMatrix(1500, 24, 10, 0.25, 101);
  FloatMatrix queries = RandomMatrix(8, 24, 102);
  auto opts = ShardedOptions(data.rows(), 4, IndexType::kIvfFlat);
  opts.index.params.nlist = 16;
  opts.index.params.nprobe = 2;

  Collection overridden(opts);
  ASSERT_TRUE(overridden.Insert(data).ok());
  ASSERT_TRUE(overridden.Flush().ok());

  auto retuned_opts = opts;
  retuned_opts.index.params.nprobe = 9;
  Collection retuned(retuned_opts);
  ASSERT_TRUE(retuned.Insert(data).ok());
  ASSERT_TRUE(retuned.Flush().ok());

  // A per-request override must hit every shard with the same effective
  // knobs — identical results to a collection built with those knobs.
  SearchRequest request = SearchRequest::Batch(queries, k);
  request.params = opts.index.params;
  request.params->nprobe = 9;
  const SearchResponse with_override = overridden.Search(request);

  SearchRequest plain = SearchRequest::Batch(queries, k);
  const SearchResponse without = retuned.Search(plain);

  ASSERT_EQ(with_override.neighbors.size(), without.neighbors.size());
  for (size_t q = 0; q < queries.rows(); ++q) {
    ExpectSameResults(with_override.neighbors[q], without.neighbors[q],
                      "override q=" + std::to_string(q));
  }
}

TEST(ShardParityTest, ScatterGatherWorkAccounting) {
  FloatMatrix data = RandomMatrix(800, 16, 103);
  FloatMatrix queries = RandomMatrix(6, 16, 104);
  for (const int shards : {1, 3}) {
    auto coll = MakeSharded(data, shards);
    WorkCounters counters;
    const auto results = coll->SearchBatch(queries, 5, &counters);
    ASSERT_EQ(results.size(), queries.rows());
    // One scatter per (query, shard) pair; the gather saw at least one
    // candidate per non-empty shard list.
    EXPECT_EQ(counters.shard_scatters, queries.rows() * shards);
    EXPECT_GE(counters.gather_candidates, queries.rows() * 5u);
    // Scatter/gather bookkeeping must not leak into charged work: Total()
    // stays a pure distance/hop budget.
    WorkCounters plain;
    plain.full_distance_evals = counters.full_distance_evals;
    plain.coarse_distance_evals = counters.coarse_distance_evals;
    plain.code_distance_evals = counters.code_distance_evals;
    plain.pq_lookup_ops = counters.pq_lookup_ops;
    plain.table_build_flops = counters.table_build_flops;
    plain.graph_hops = counters.graph_hops;
    plain.reorder_evals = counters.reorder_evals;
    EXPECT_EQ(counters.Total(), plain.Total());
  }
}

// ------------------------------------------------- num_shards as a knob

TEST(ShardParityTest, ParamSpaceRoundTripsNumShards) {
  ParamSpace space;
  ASSERT_EQ(space.dims(), static_cast<size_t>(kNumParamDims));
  for (const int shards : {1, 2, 4, 8, 16}) {
    TuningConfig c = space.DefaultConfig(IndexType::kIvfFlat);
    c.system.num_shards = shards;
    const TuningConfig back = space.Decode(space.Encode(c));
    EXPECT_EQ(back.system.num_shards, shards);
  }
  // Out-of-range coordinates clamp into the knob's domain.
  std::vector<double> hi(space.dims(), 2.0);
  EXPECT_LE(space.Decode(hi).system.num_shards, 16);
  std::vector<double> lo(space.dims(), -1.0);
  EXPECT_GE(space.Decode(lo).system.num_shards, 1);
}

TEST(ShardParityTest, KnowledgeBasePersistsNumShards) {
  ParamSpace space;
  Observation obs;
  obs.iteration = 3;
  obs.config = space.DefaultConfig(IndexType::kIvfFlat);
  obs.config.system.num_shards = 8;
  obs.x = space.Encode(obs.config);
  obs.qps = 1234.0;
  obs.recall = 0.93;
  obs.primary = 1234.0;

  const std::string path =
      std::string(::testing::TempDir()) + "/kb_num_shards.tsv";
  ASSERT_TRUE(SaveKnowledgeBase(path, {obs}, space).ok());
  const auto loaded = LoadKnowledgeBase(path, space);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].config.system.num_shards, 8);
  std::remove(path.c_str());

  // A v2 file written before the num_shards dimension (17 coordinates)
  // migrates on load: the appended dimension pads to its encoded default.
  const std::string old_path =
      std::string(::testing::TempDir()) + "/kb_pre_shards.tsv";
  {
    std::ofstream out(old_path);
    out << "vdtuner-knowledge-base-v2 dims=" << (space.dims() - 1) << '\n';
    std::string line = SerializeObservation(obs, space);
    line.resize(line.rfind('\t'));
    out << line << '\n';
  }
  const auto migrated = LoadKnowledgeBase(old_path, space);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  ASSERT_EQ(migrated->size(), 1u);
  EXPECT_EQ((*migrated)[0].config.system.num_shards, 1);
  std::remove(old_path.c_str());
}

}  // namespace
}  // namespace vdt
