// Tests for src/gp: kernels, GP regression, sampling designs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "gp/sampling.h"

namespace vdt {
namespace {

TEST(KernelTest, Matern52AtZeroDistanceIsSignalVariance) {
  Matern52Kernel k;
  KernelParams p = KernelParams::Uniform(3, 0.5, 2.0);
  const std::vector<double> x = {0.1, 0.2, 0.3};
  EXPECT_NEAR(k.Eval(x, x, p), 2.0, 1e-12);
}

TEST(KernelTest, Matern52DecaysWithDistance) {
  Matern52Kernel k;
  KernelParams p = KernelParams::Uniform(1, 0.5, 1.0);
  double prev = k.Eval({0.0}, {0.0}, p);
  for (double d = 0.1; d < 2.0; d += 0.1) {
    const double v = k.Eval({0.0}, {d}, p);
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST(KernelTest, RbfMatchesClosedForm) {
  RbfKernel k;
  KernelParams p = KernelParams::Uniform(1, 2.0, 3.0);
  const double r = 1.0 / 2.0;
  EXPECT_NEAR(k.Eval({0.0}, {1.0}, p), 3.0 * std::exp(-0.5 * r * r), 1e-12);
}

TEST(KernelTest, ArdLengthScalesWeightDimensions) {
  Matern52Kernel k;
  KernelParams p;
  p.signal_variance = 1.0;
  p.length_scales = {0.1, 10.0};  // dim 0 matters, dim 1 barely
  const double v_dim0 = k.Eval({0.0, 0.0}, {0.2, 0.0}, p);
  const double v_dim1 = k.Eval({0.0, 0.0}, {0.0, 0.2}, p);
  EXPECT_LT(v_dim0, v_dim1);  // same move is "farther" along dim 0
}

TEST(KernelTest, GramIsSymmetricWithUnitDiagonalScale) {
  Matern52Kernel k;
  KernelParams p = KernelParams::Uniform(2, 0.7, 1.5);
  Rng rng(3);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({rng.Uniform(), rng.Uniform()});
  const Matrix g = k.Gram(pts, p);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(g(i, i), 1.5, 1e-12);
    for (size_t j = 0; j < 6; ++j) EXPECT_NEAR(g(i, j), g(j, i), 1e-12);
  }
}

TEST(GpTest, RejectsBadInputs) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}, {0.2, 0.3}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(
      gp.Fit({{0.1}}, {std::numeric_limits<double>::quiet_NaN()}).ok());
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GpOptions opt;
  opt.noise_variance = 1e-8;
  GaussianProcess gp(opt);
  std::vector<std::vector<double>> xs = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> ys;
  for (const auto& x : xs) ys.push_back(std::sin(6.0 * x[0]));
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    const GpPrediction p = gp.Predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.stddev(), 0.05);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs = {{0.4}, {0.45}, {0.5}};
  std::vector<double> ys = {1.0, 1.2, 1.1};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  const double var_near = gp.Predict({0.45}).variance;
  const double var_far = gp.Predict({0.0}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(GpTest, LearnsSmoothFunction) {
  GaussianProcess gp;
  Rng rng(7);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Uniform();
    xs.push_back({x});
    ys.push_back(x * x);  // smooth target
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  double max_err = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    max_err = std::max(max_err, std::abs(gp.Predict({x}).mean - x * x));
  }
  EXPECT_LT(max_err, 0.08);
}

TEST(GpTest, PredictionInOriginalUnits) {
  // Targets with large offset/scale: standardization must round-trip.
  GaussianProcess gp;
  std::vector<std::vector<double>> xs = {{0.1}, {0.5}, {0.9}};
  std::vector<double> ys = {1000.0, 1500.0, 2000.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_NEAR(gp.Predict({0.5}).mean, 1500.0, 60.0);
}

TEST(GpTest, ConstantTargetsHandled) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs = {{0.1}, {0.5}, {0.9}};
  std::vector<double> ys = {3.0, 3.0, 3.0};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_NEAR(gp.Predict({0.3}).mean, 3.0, 1e-3);
}

TEST(GpTest, DeterministicAcrossRuns) {
  auto run = [] {
    GaussianProcess gp;
    Rng rng(19);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
      xs.push_back({rng.Uniform(), rng.Uniform()});
      ys.push_back(rng.Normal());
    }
    gp.Fit(xs, ys);
    return gp.Predict({0.3, 0.7});
  };
  const GpPrediction a = run();
  const GpPrediction b = run();
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.variance, b.variance);
}

TEST(MultiOutputGpTest, IndependentOutputs) {
  MultiOutputGp gp(2);
  std::vector<std::vector<double>> xs = {{0.0}, {0.5}, {1.0}};
  std::vector<std::vector<double>> ys = {{0.0, 0.5, 1.0}, {1.0, 0.5, 0.0}};
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  const auto p = gp.Predict({0.5});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0].mean, 0.5, 0.15);
  EXPECT_NEAR(p[1].mean, 0.5, 0.15);
  // Opposite slopes away from center.
  EXPECT_GT(gp.Predict({0.9})[0].mean, gp.Predict({0.1})[0].mean);
  EXPECT_LT(gp.Predict({0.9})[1].mean, gp.Predict({0.1})[1].mean);
}

TEST(MultiOutputGpTest, RejectsWrongOutputCount) {
  MultiOutputGp gp(2);
  EXPECT_FALSE(gp.Fit({{0.1}}, {{1.0}}).ok());
}

TEST(SamplingTest, LatinHypercubeStratifiesEveryDimension) {
  Rng rng(5);
  const size_t n = 16, dim = 4;
  auto pts = LatinHypercube(n, dim, &rng);
  ASSERT_EQ(pts.size(), n);
  for (size_t d = 0; d < dim; ++d) {
    std::vector<bool> stratum(n, false);
    for (const auto& p : pts) {
      ASSERT_GE(p[d], 0.0);
      ASSERT_LT(p[d], 1.0);
      stratum[static_cast<size_t>(p[d] * n)] = true;
    }
    for (size_t s = 0; s < n; ++s) {
      EXPECT_TRUE(stratum[s]) << "dim " << d << " stratum " << s << " empty";
    }
  }
}

TEST(SamplingTest, UniformDesignInBounds) {
  Rng rng(6);
  auto pts = UniformDesign(100, 3, &rng);
  for (const auto& p : pts) {
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(SamplingTest, HaltonIsDeterministicAndSpreads) {
  auto a = HaltonSequence(64, 2);
  auto b = HaltonSequence(64, 2);
  ASSERT_EQ(a.size(), 64u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // Rough spread check: mean near 0.5 in each dim.
  for (size_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (const auto& p : a) mean += p[d];
    EXPECT_NEAR(mean / 64.0, 0.5, 0.1);
  }
}

// Property sweep: GP fit quality is stable across seeds.
class GpSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GpSeedTest, FitsLinearFunctionAcrossSeeds) {
  GpOptions opt;
  opt.seed = GetParam();
  GaussianProcess gp(opt);
  Rng rng(GetParam());
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    const double x0 = rng.Uniform(), x1 = rng.Uniform();
    xs.push_back({x0, x1});
    ys.push_back(2.0 * x0 - x1);
  }
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_NEAR(gp.Predict({0.5, 0.5}).mean, 0.5, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace vdt
